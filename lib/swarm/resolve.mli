(** Pluggable conflict-resolution policy (DESIGN.md §13).

    When two replicas edited the same path concurrently, both gossip
    endpoints must crown the {e same} winner from the same two entries
    with no extra round trip — so a policy is a pure function of the
    path and the two entries, evaluated independently on each side.
    The loser is never discarded: the plan keeps it as a
    [<path>.fsync-conflict.<author>] sibling. *)

type verdict = Ours | Theirs

type policy = path:string -> ours:Replica.entry -> theirs:Replica.entry -> verdict
(** Must be deterministic and symmetric: swapping [ours]/[theirs] must
    flip the verdict, or the two endpoints will each keep their own copy
    and the session's closing root check will fail. *)

val default : policy
(** Larger content fingerprint (raw bytes, [String.compare]) wins; on
    equal fingerprints, the lexicographically larger author.  Arbitrary
    but total, symmetric, and independent of which end evaluates it. *)

val prefer_author : string -> policy
(** Entries authored by the given peer win; others fall back to
    {!default}.  The "my laptop is canonical" policy. *)
