(** One anti-entropy exchange between two peers over the fsyncd/1 wire
    (protocol rev 3, DESIGN.md §13), as a pair of pure message-in /
    messages-out state machines — the swarm's counterpart of
    {!Fsync_server.Session} and {!Fsync_server.Puller}, sharing their
    per-file transfer machinery ({!Fsync_server.Serve_file} /
    {!Fsync_server.Fetch_file}) byte for byte.

    Session shape (initiator ⇄ responder):
    + [Hello] (swarm extension: peer id + Merkle summary) ⇄ [Welcome]
      + a recon {e greeting} carrying the responder's root digest;
    + equal roots short-circuit to [Swarm_end] ⇄ [Bye] — a converged
      pair costs four tiny frames;
    + otherwise the initiator descends the Merkle tree with batched
      range queries (one frame per level) until it holds the symmetric
      difference, then both sides exchange entry tables and compute the
      {e same} {!Plan} independently;
    + the initiator pulls its [Remote] installs one file at a time
      (multiround hash protocol, verified [Full] fallback), then
      [Swarm_end] hands the wire to the responder, which pulls its own
      installs in the opposite direction;
    + the responder applies its plan, answers [Bye] with its post-apply
      root; the initiator applies, and fails typed
      ([Verification_failed]) unless the roots now match.

    Conflicts surface in the plan (never silently): concurrent edits
    land as [<path>.fsync-conflict.<author>] siblings on both sides.
    Either machine raises typed {!Fsync_core.Error} values on protocol
    violations; the replica is only mutated at apply time, content files
    first, vector table last. *)

type stats = {
  conflicts : int;      (** conflict pairs surfaced by this side's plan *)
  files_pulled : int;   (** contents fetched from the peer *)
  installs : int;       (** entries this side recorded at apply time *)
  bytes_in : int;       (** decoded payload bytes received *)
  bytes_out : int;      (** encoded payload bytes sent *)
  short_circuit : bool; (** the equal-roots fast path fired *)
}

module Initiator : sig
  type t

  val create :
    ?policy:Resolve.policy -> ?scope:Fsync_obs.Scope.t -> Replica.t -> t

  val start : t -> string list
  (** The opening [Hello] (encoded frames, send order). *)

  val on_message : t -> string -> string list

  val finished : t -> bool
  val failed : t -> bool
  val peer_id : t -> string option
  (** The responder's peer id, once greeted. *)

  val stats : t -> stats
end

module Responder : sig
  type t

  val create :
    ?policy:Resolve.policy ->
    ?scope:Fsync_obs.Scope.t ->
    ?config:Fsync_server.Msg.sync_config ->
    Replica.t ->
    t

  val on_message : t -> string -> string list
  (** Feed the initiator's frames, starting with its [Hello].  A Hello
      without the swarm extension is a typed error — route those to a
      plain {!Fsync_server.Session} instead (see {!Peer}). *)

  val finished : t -> bool
  val failed : t -> bool
  val peer_id : t -> string option
  val stats : t -> stats
end
