(** One peer's view of the replicated collection: the files on disk
    plus a per-path {!Version_vector} table (DESIGN.md §13).

    Every path owns an [entry] — vector, last-writer peer id, content
    fingerprint, and a [present] flag (false = tombstone, so deletes
    propagate and edit-vs-delete conflicts are detectable).  The table
    lives at [.fsync-swarm/vectors] under the replica root and is
    persisted with {!Fsync_store.Io.write_file_atomic}, {e after} the
    content files it describes — a crash leaves either the old table or
    the new one, and any file whose bytes moved underneath the recorded
    fingerprint is folded back in as a fresh local edit on reload.

    The {!merkle} tree is built over {e entry digests} (not content
    fingerprints): two peers agree on a subtree exactly when they agree
    on contents {e and} causal state, which is what the gossip descent
    needs to find both data and metadata differences. *)

type entry = {
  vv : Version_vector.t;
  author : string;  (** peer id of the causally latest writer *)
  present : bool;   (** false: a tombstone *)
  fp : Fsync_hash.Fingerprint.t;  (** of [""] for tombstones *)
  len : int;
}

val entry_equal : entry -> entry -> bool

val entry_digest : entry -> Fsync_hash.Fingerprint.t
(** Fingerprint of the canonical entry encoding — the Merkle leaf
    value. *)

val put_entry : Buffer.t -> entry -> unit

val get_entry : string -> pos:int -> entry * int
(** Typed errors on malformed bytes, lengths validated first. *)

val valid_path : string -> bool
(** Relative, non-empty, no ["."]/[".."] segments, no backslashes or
    NULs, not under [.fsync-swarm] — everything a hostile peer might
    try in order to escape the replica root. *)

type t

val load :
  ?io:Fsync_store.Io.t ->
  ?scope:Fsync_obs.Scope.t ->
  root:string ->
  peer:string ->
  unit ->
  t
(** Open (creating if needed) the replica rooted at [root] for peer id
    [peer]: read the vector table, scan the tree, fold unknown files in
    as local edits ([{peer: 1}]), bump entries whose on-disk bytes no
    longer match, tombstone entries whose file vanished, and persist the
    reconciled table.
    @raise Fsync_core.Error.E on an unreadable or corrupt table. *)

val peer : t -> string
val root : t -> string

val entries : t -> (string * entry) list
(** Sorted by path; includes tombstones. *)

val find : t -> string -> entry option

val content : t -> string -> string option
(** [None] for tombstones and unknown paths. *)

val files : t -> (string * string) list
(** Present [(path, content)] pairs, sorted — the shape the pairwise
    sync layers consume. *)

val set : t -> path:string -> string -> unit
(** Local edit: write the file (atomically), bump our component, record
    ourselves as author, persist the table.  A write of identical bytes
    is a no-op.  @raise Fsync_core.Error.E on an invalid path. *)

val delete : t -> string -> unit
(** Local delete: unlink, keep a bumped tombstone, persist. *)

val install : t -> path:string -> entry -> string option -> unit
(** Adopt a gossip-decided outcome verbatim: the entry {e as decided}
    (vector already merged) plus the content ([None] for tombstones).
    Content hits the disk atomically now; the table is {e not}
    persisted — call {!flush} once the whole exchange is applied, so a
    crash mid-apply replays as local edits instead of lying about
    causality.  @raise Fsync_core.Error.E on an invalid path or a
    present entry without content. *)

val flush : t -> unit
(** Persist the vector table atomically. *)

val merkle : t -> Fsync_reconcile.Merkle.t
(** Over (path, entry digest), tombstones included. *)

val summary : t -> Fsync_hash.Fingerprint.t
(** The Merkle root digest — the whole-replica version summary carried
    in the swarm [Hello]. *)
