module Fp = Fsync_hash.Fingerprint
module Error = Fsync_core.Error
module Scope = Fsync_obs.Scope
module Merkle = Fsync_reconcile.Merkle
module Msg = Fsync_server.Msg
module Handshake = Fsync_server.Handshake
module Serve_file = Fsync_server.Serve_file
module Sigcache = Fsync_server.Sigcache

(* The responder expands a differing range to its leaves once it covers
   at most this many of its paths; above it, it answers with child-range
   digests for the initiator to prune.  Both constants only shape the
   descent's frame count, never its result. *)
let leaf_cutoff = 16

type stats = {
  conflicts : int;
  files_pulled : int;
  installs : int;
  bytes_in : int;
  bytes_out : int;
  short_circuit : bool;
}

(* ---- state shared by both roles ---- *)

type common = {
  replica : Replica.t;
  policy : Resolve.policy;
  scope : Scope.t;
  cache : Sigcache.t;
  serve_counters : Serve_file.counters;
  tree : Merkle.t; (* session-start snapshot; replica mutates at apply *)
  config : Msg.sync_config ref; (* shared with [fetch]; Welcome updates it *)
  mutable peer_id : string option;
  mutable installs : Plan.install list;
  fetch : Fetch_plan.t;
  mutable serve_current : Serve_file.t option;
  mutable conflicts : int;
  mutable applied : int;
  mutable bytes_in : int;
  mutable bytes_out : int;
  mutable short_circuit : bool;
}

let common ?(policy = Resolve.default) ?(scope = Scope.disabled)
    ?(config = Msg.default_sync_config) replica =
  let config = ref (Msg.validate_sync_config config) in
  {
    replica;
    policy;
    scope;
    cache = Sigcache.create ();
    serve_counters = Serve_file.fresh_counters ();
    tree = Replica.merkle replica;
    config;
    peer_id = None;
    installs = [];
    fetch = Fetch_plan.create ~config:(fun () -> !config) replica;
    serve_current = None;
    conflicts = 0;
    applied = 0;
    bytes_in = 0;
    bytes_out = 0;
    short_circuit = false;
  }

let stats_of c =
  {
    conflicts = c.conflicts;
    files_pulled = Fetch_plan.count c.fetch;
    installs = c.applied;
    bytes_in = c.bytes_in;
    bytes_out = c.bytes_out;
    short_circuit = c.short_circuit;
  }

let root_digest c = Merkle.root_digest c.tree

(* ---- descent answers (responder side of the split Recon.run) ---- *)

let answer_query c (q : Swarm_wire.query) =
  let mine = Merkle.digest_of_range c.tree q.range in
  if String.equal mine q.digest then Swarm_wire.Equal q.range
  else
    let children = Merkle.children (Merkle.config c.tree) q.range in
    if
      Int.equal (Array.length children) 0
      || Merkle.count_in_range c.tree q.range <= leaf_cutoff
    then Swarm_wire.Leaves (q.range, Merkle.leaves_in_range c.tree q.range)
    else
      Swarm_wire.Descend
        ( q.range,
          List.map
            (fun r ->
              {
                Swarm_wire.range = r;
                digest = Merkle.digest_of_range c.tree r;
              })
            (Array.to_list children) )

(* ---- plan ---- *)

let compute_plan c pairs =
  let pairs =
    List.sort (fun (a, _) (b, _) -> String.compare a b) pairs
  in
  let decided =
    List.concat_map
      (fun (path, theirs) ->
        let ours = Replica.find c.replica path in
        let o = Plan.decide ~policy:c.policy ~path ~ours ~theirs () in
        if o.Plan.conflict then begin
          c.conflicts <- c.conflicts + 1;
          Scope.incr c.scope "conflicts_detected"
        end;
        List.map (fun i -> (path, i)) o.Plan.installs)
      pairs
  in
  (* A fresh conflict sibling can collide with the table's own decision
     for that literal path — the sibling already existed on one side
     from an earlier round, so one endpoint also plans an adoption for
     it.  Keep the sibling install and drop the same-dest path decision:
     both endpoints hold the same conflicting pair, so both keep the
     same entry and the plans stay mirror images. *)
  let sibling_dests =
    List.filter_map
      (fun (path, (i : Plan.install)) ->
        if String.equal path i.dest then None else Some i.dest)
      decided
  in
  let installs =
    List.filter_map
      (fun (path, (i : Plan.install)) ->
        if
          String.equal path i.dest
          && List.exists (String.equal i.dest) sibling_dests
        then None
        else Some i)
      decided
  in
  c.installs <- c.installs @ installs;
  Fetch_plan.enqueue c.fetch installs

(* ---- the fetching side of a transfer phase ---- *)

let advance_fetch c = Fetch_plan.advance c.fetch
let fetch_on_begin c ~path ~new_len ~fp = Fetch_plan.on_begin c.fetch ~path ~new_len ~fp
let fetch_on_hashes c hs = Fetch_plan.on_hashes c.fetch hs
let fetch_on_tail c z = Fetch_plan.on_tail c.fetch z
let fetch_on_full c body = Fetch_plan.on_full c.fetch body

(* ---- the serving side of a transfer phase ---- *)

let serve_on_fetch c body =
  (match c.serve_current with
  | Some _ -> Error.malformed "Gossip: overlapping fetch requests"
  | None -> ());
  let { Swarm_wire.path; has_old } = Swarm_wire.decode_fetch body in
  match Replica.content c.replica path with
  | None -> Error.malformed "Gossip: fetch of absent path %s" path
  | Some content ->
      let sf =
        Serve_file.create ~who:"Gossip" ~config:!(c.config) ~cache:c.cache
          ~counters:c.serve_counters
          { path; content; fp = Fp.of_string content; has_old }
      in
      c.serve_current <- Some sf;
      Serve_file.start sf

let current_serve c =
  match c.serve_current with
  | Some sf -> sf
  | None -> Error.malformed "Gossip: reply with no open serve"

let serve_on_matched c bitmap = Serve_file.on_matched (current_serve c) bitmap

let serve_on_ack c ok =
  match Serve_file.on_ack (current_serve c) ok with
  | `Complete ->
      c.serve_current <- None;
      `Complete
  | `Replies ms -> `Replies ms

(* ---- apply ---- *)

(* Snapshot every [Local] source before the first write: a conflict
   loser's bytes live at the path its winner is about to overwrite. *)
let apply c =
  let resolved =
    List.map
      (fun (i : Plan.install) ->
        let content =
          match i.source with
          | Plan.Absent -> None
          | Plan.Local p -> (
              match Replica.content c.replica p with
              | Some _ as s -> s
              | None -> Error.malformed "Gossip: local source %s vanished" p)
          | Plan.Remote _ -> (
              match Fetch_plan.pulled c.fetch i.dest with
              | Some _ as s -> s
              | None ->
                  Error.fail
                    (Error.Disconnected
                       (Printf.sprintf
                          "Gossip: peer never delivered content for %s" i.dest)))
        in
        (i, content))
      c.installs
  in
  List.iter
    (fun ((i : Plan.install), content) ->
      Replica.install c.replica ~path:i.dest i.entry content)
    resolved;
  Replica.flush c.replica;
  c.applied <- List.length resolved;
  Scope.add c.scope "gossip_installs" c.applied

let account_in c raw =
  c.bytes_in <- c.bytes_in + String.length raw;
  Scope.add c.scope "gossip_bytes" (String.length raw)

let encode_all c msgs =
  List.map
    (fun m ->
      let raw = Msg.encode ~config:!(c.config) m in
      c.bytes_out <- c.bytes_out + String.length raw;
      Scope.add c.scope "gossip_bytes" (String.length raw);
      raw)
    msgs

(* ---- initiator ---- *)

module Initiator = struct
  type phase =
    | Expect_welcome
    | Expect_greet
    | Recon
    | Expect_table
    | Pulling
    | Serving (* the responder's pull phase, then its Bye *)
    | Done
    | Failed

  type t = {
    c : common;
    diff : (string, unit) Hashtbl.t; (* symmetric-difference paths *)
    mutable phase : phase;
  }

  let create ?policy ?scope replica =
    let c = common ?policy ?scope replica in
    Scope.incr c.scope "gossip_sessions";
    { c; diff = Hashtbl.create 16; phase = Expect_welcome }

  let finished t = match t.phase with Done -> true | _ -> false
  let failed t = match t.phase with Failed -> true | _ -> false
  let peer_id t = t.c.peer_id
  let stats t = stats_of t.c

  let start t =
    encode_all t.c
      [
        Handshake.hello
          ~swarm:
            {
              Msg.peer = Replica.peer t.c.replica;
              summary = Fp.of_raw (root_digest t.c);
            }
          ();
      ]

  let add_diff t path = Hashtbl.replace t.diff path ()

  (* One answer frame in, the next query frontier out. *)
  let process_answers t answers =
    let next = ref [] in
    List.iter
      (fun (a : Swarm_wire.answer) ->
        match a with
        | Swarm_wire.Equal _ -> ()
        | Swarm_wire.Leaves (r, theirs) ->
            let remaining = Hashtbl.create 8 in
            List.iter
              (fun (p, d) -> Hashtbl.replace remaining p d)
              theirs;
            List.iter
              (fun (p, d) ->
                (match Hashtbl.find_opt remaining p with
                | Some d' when Fp.equal d d' -> ()
                | Some _ | None -> add_diff t p);
                Hashtbl.remove remaining p)
              (Merkle.leaves_in_range t.c.tree r);
            Hashtbl.iter (fun p _ -> add_diff t p) remaining
        | Swarm_wire.Descend (_, children) ->
            List.iter
              (fun (q : Swarm_wire.query) ->
                let mine = Merkle.digest_of_range t.c.tree q.range in
                if not (String.equal mine q.digest) then
                  next := { q with digest = mine } :: !next)
              children)
      answers;
    List.rev !next

  let table_of_diff t =
    let paths =
      List.sort String.compare
        (Hashtbl.fold (fun p () acc -> p :: acc) t.diff [])
    in
    List.map (fun p -> (p, Replica.find t.c.replica p)) paths

  let begin_pull t =
    match advance_fetch t.c with
    | `Msgs ms ->
        t.phase <- Pulling;
        ms
    | `Drained ->
        t.phase <- Serving;
        [ Msg.Swarm_end ]

  let after_fetch t =
    match advance_fetch t.c with
    | `Msgs ms -> ms
    | `Drained ->
        t.phase <- Serving;
        [ Msg.Swarm_end ]

  let on_bye t root =
    apply t.c;
    let mine = Replica.summary t.c.replica in
    if not (Fp.equal mine root) then begin
      t.phase <- Failed;
      Error.fail
        (Error.Verification_failed
           (Printf.sprintf
              "Gossip: post-exchange root %s, peer announced %s" (Fp.to_hex mine)
              (Fp.to_hex root)))
    end;
    t.phase <- Done;
    []

  let on_message t raw =
    account_in t.c raw;
    let msg = Msg.decode ~config:!(t.c.config) raw in
    let dispatch () =
      match (t.phase, msg) with
      | Expect_welcome, Msg.Welcome { version; config; _ } ->
          Handshake.check_version ~who:"Gossip" version;
          if version < 3 then
            Error.malformed
              "Gossip: peer answered at rev %d, the swarm needs rev 3" version;
          t.c.config := config;
          t.phase <- Expect_greet;
          []
      | Expect_welcome, Msg.Busy { retry_after_ms } ->
          Handshake.reject_busy ~retry_after_ms
      | Expect_greet, Msg.Swarm_recon body -> (
          match Swarm_wire.decode_recon body with
          | Swarm_wire.Greet { peer; root } ->
              t.c.peer_id <- Some peer;
              if String.equal root (root_digest t.c) then begin
                (* Converged already: the whole session is four frames. *)
                t.c.short_circuit <- true;
                Scope.incr t.c.scope "gossip_short_circuits";
                t.phase <- Serving;
                [ Msg.Swarm_end ]
              end
              else begin
                t.phase <- Recon;
                [
                  Msg.Swarm_recon
                    (Swarm_wire.encode_recon
                       (Swarm_wire.Queries
                          [
                            {
                              range = Merkle.root_range;
                              digest = root_digest t.c;
                            };
                          ]));
                ]
              end
          | Swarm_wire.Queries _ | Swarm_wire.Answers _ ->
              Error.malformed "Gossip: expected the recon greeting")
      | Recon, Msg.Swarm_recon body -> (
          match Swarm_wire.decode_recon body with
          | Swarm_wire.Answers answers -> (
              match process_answers t answers with
              | _ :: _ as next ->
                  [
                    Msg.Swarm_recon
                      (Swarm_wire.encode_recon (Swarm_wire.Queries next));
                  ]
              | [] ->
                  t.phase <- Expect_table;
                  [ Msg.Swarm_table (Swarm_wire.encode_table (table_of_diff t)) ])
          | Swarm_wire.Greet _ | Swarm_wire.Queries _ ->
              Error.malformed "Gossip: expected recon answers")
      | Expect_table, Msg.Swarm_table body ->
          compute_plan t.c (Swarm_wire.decode_table body);
          begin_pull t
      | Pulling, Msg.File_begin { path; new_len; fp } ->
          fetch_on_begin t.c ~path ~new_len ~fp
      | Pulling, Msg.Hashes hs -> fetch_on_hashes t.c hs
      | Pulling, Msg.Tail z -> (
          match fetch_on_tail t.c z with
          | `Done, replies -> replies @ after_fetch t
          | `Wait, replies -> replies)
      | Pulling, Msg.Full body ->
          let replies = fetch_on_full t.c body in
          replies @ after_fetch t
      | Serving, Msg.Swarm_fetch body -> serve_on_fetch t.c body
      | Serving, Msg.Matched bitmap -> serve_on_matched t.c bitmap
      | Serving, Msg.File_ack ok -> (
          match serve_on_ack t.c ok with
          | `Complete -> []
          | `Replies ms -> ms)
      | Serving, Msg.Bye { root } -> on_bye t root
      | _, Msg.Error_msg m ->
          t.phase <- Failed;
          Error.fail
            (Error.Disconnected (Printf.sprintf "Gossip: peer error: %s" m))
      | _, other ->
          t.phase <- Failed;
          Error.malformed "Gossip: unexpected %s" (Msg.label other)
    in
    let replies =
      try dispatch ()
      with e ->
        (match t.phase with Done -> () | _ -> t.phase <- Failed);
        raise e
    in
    encode_all t.c replies
end

(* ---- responder ---- *)

module Responder = struct
  type phase =
    | Expect_hello
    | Serving (* descent, table, the initiator's pulls *)
    | Pushing (* our own pulls, then apply + Bye *)
    | Done
    | Failed

  type t = { c : common; mutable phase : phase }

  let create ?policy ?scope ?config replica =
    { c = common ?policy ?scope ?config replica; phase = Expect_hello }

  let finished t = match t.phase with Done -> true | _ -> false
  let failed t = match t.phase with Failed -> true | _ -> false
  let peer_id t = t.c.peer_id
  let stats t = stats_of t.c

  let finish t =
    apply t.c;
    t.phase <- Done;
    [ Msg.Bye { root = Replica.summary t.c.replica } ]

  let begin_push t =
    match advance_fetch t.c with
    | `Msgs ms ->
        t.phase <- Pushing;
        ms
    | `Drained -> finish t

  let on_message t raw =
    account_in t.c raw;
    let msg = Msg.decode ~config:!(t.c.config) raw in
    let dispatch () =
      match (t.phase, msg) with
      | Expect_hello, Msg.Hello { version; trace = _; swarm } -> (
          Handshake.check_version ~who:"Gossip" version;
          match swarm with
          | None ->
              Error.malformed
                "Gossip: plain Hello on a swarm endpoint (route to Session)"
          | Some { Msg.peer; summary = _ } ->
              if version < 3 then
                Error.malformed
                  "Gossip: swarm extension from a rev-%d peer" version;
              t.c.peer_id <- Some peer;
              Scope.incr t.c.scope "gossip_sessions";
              t.phase <- Serving;
              [
                Handshake.welcome ~client_version:version
                  ~file_count:(List.length (Replica.files t.c.replica))
                  ~root:(Fp.of_raw (root_digest t.c))
                  ~config:!(t.c.config);
                Msg.Swarm_recon
                  (Swarm_wire.encode_recon
                     (Swarm_wire.Greet
                        {
                          peer = Replica.peer t.c.replica;
                          root = root_digest t.c;
                        }));
              ])
      | Serving, Msg.Swarm_recon body -> (
          match Swarm_wire.decode_recon body with
          | Swarm_wire.Queries qs ->
              [
                Msg.Swarm_recon
                  (Swarm_wire.encode_recon
                     (Swarm_wire.Answers (List.map (answer_query t.c) qs)));
              ]
          | Swarm_wire.Greet _ | Swarm_wire.Answers _ ->
              Error.malformed "Gossip: expected recon queries")
      | Serving, Msg.Swarm_query body ->
          let path = Swarm_wire.decode_query body in
          [
            Msg.Swarm_table
              (Swarm_wire.encode_table
                 [ (path, Replica.find t.c.replica path) ]);
          ]
      | Serving, Msg.Swarm_table body ->
          let theirs = Swarm_wire.decode_table body in
          let mine =
            List.map (fun (p, _) -> (p, Replica.find t.c.replica p)) theirs
          in
          compute_plan t.c theirs;
          [ Msg.Swarm_table (Swarm_wire.encode_table mine) ]
      | Serving, Msg.Swarm_fetch body -> serve_on_fetch t.c body
      | Serving, Msg.Matched bitmap -> serve_on_matched t.c bitmap
      | Serving, Msg.File_ack ok -> (
          match serve_on_ack t.c ok with
          | `Complete -> []
          | `Replies ms -> ms)
      | Serving, Msg.Swarm_end -> begin_push t
      | Pushing, Msg.File_begin { path; new_len; fp } ->
          fetch_on_begin t.c ~path ~new_len ~fp
      | Pushing, Msg.Hashes hs -> fetch_on_hashes t.c hs
      | Pushing, Msg.Tail z -> (
          match fetch_on_tail t.c z with
          | `Done, replies -> (
              replies
              @
              match advance_fetch t.c with
              | `Msgs ms -> ms
              | `Drained -> finish t)
          | `Wait, replies -> replies)
      | Pushing, Msg.Full body -> (
          let replies = fetch_on_full t.c body in
          replies
          @
          match advance_fetch t.c with
          | `Msgs ms -> ms
          | `Drained -> finish t)
      | _, Msg.Error_msg m ->
          t.phase <- Failed;
          Error.fail
            (Error.Disconnected (Printf.sprintf "Gossip: peer error: %s" m))
      | _, other ->
          t.phase <- Failed;
          Error.malformed "Gossip: unexpected %s" (Msg.label other)
    in
    let replies =
      try dispatch ()
      with e ->
        (match t.phase with Done -> () | _ -> t.phase <- Failed);
        raise e
    in
    encode_all t.c replies
end
