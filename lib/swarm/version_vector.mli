(** Per-path version vectors for N-peer anti-entropy (DESIGN.md §13).

    A vector maps peer ids to edit counters.  Peer [p] bumps its own
    component on every local write, so causality is recoverable by
    pointwise comparison: [a] {e dominates} [b] when [a] has seen every
    edit [b] has (and at least one more), and two vectors are
    {e concurrent} when neither dominates — the situation the swarm
    surfaces as a typed conflict instead of letting a last writer win.

    Vectors are canonical (sorted by peer id, no zero components), so
    equal vector values encode to equal bytes — the entry digests the
    gossip Merkle descent compares depend on this. *)

type t

val empty : t

val equal : t -> t -> bool

val get : t -> string -> int
(** The peer's component; 0 when absent. *)

val bump : t -> string -> t
(** Increment one peer's component. *)

val merge : t -> t -> t
(** Pointwise maximum — the vector of a state that has seen both. *)

val dominates : t -> t -> bool
(** [dominates a b]: [a >= b] pointwise and [a <> b].  A strict partial
    order (irreflexive, transitive, antisymmetric). *)

val concurrent : t -> t -> bool
(** Neither equal nor dominated either way: a genuine conflict. *)

val of_list : (string * int) list -> t
(** Canonicalize: sorts, drops non-positive components, keeps the
    maximum on duplicate peers. *)

val to_list : t -> (string * int) list
(** Sorted by peer id; every component positive. *)

val pp : t -> string
(** Human-readable [{peer:n, ...}] form for conflict reports. *)

val put_vv : Buffer.t -> t -> unit
(** Varint count, then per component: varint peer length, peer bytes,
    varint counter. *)

val get_vv : string -> pos:int -> t * int
(** Decode at [pos]; returns the vector and the next position.  Raises
    typed {!Fsync_core.Error} values on truncated or malformed bytes
    (counts are bounded before any allocation). *)
