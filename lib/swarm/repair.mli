(** Quorum read-repair for a single path ([fsync swarm repair PATH]).

    One [t] is one probe session against one peer, as a message-in /
    messages-out machine over the rev-3 wire: Hello (swarm extension)
    ⇄ Welcome + greeting, then a [Swarm_query] for the path, the peer's
    single-entry [Swarm_table] answer, a {!Plan.decide} against the
    local entry, any [Remote] content pulls, and [Swarm_end] ⇄ [Bye]
    (the roots legitimately differ — only one path was repaired, so no
    root check is made).

    A driver folds sessions over the configured peers in order — each
    session plans against the local state left by the previous one, so
    after visiting all peers the local entry dominates (or conflicts
    with, surfaced as [.fsync-conflict] siblings) every answer seen.
    {!Swarm_loopback.repair} is the in-process driver; the CLI runs the
    same machine over sockets. *)

type outcome = {
  peer : string;      (** responding peer id ("?" if it never greeted) *)
  had_entry : bool;   (** the peer knew the path at all *)
  pulled : int;       (** contents fetched from this peer *)
  installed : int;    (** entries recorded locally after this session *)
  conflict : bool;    (** this peer's entry conflicted with ours *)
}

type t

val create :
  ?policy:Resolve.policy ->
  ?scope:Fsync_obs.Scope.t ->
  Replica.t ->
  path:string ->
  t
(** Raises a typed error on an invalid path. *)

val start : t -> string list
(** The opening [Hello] (encoded frames, send order). *)

val on_message : t -> string -> string list

val finished : t -> bool
val failed : t -> bool
val peer_id : t -> string option
val outcome : t -> outcome
