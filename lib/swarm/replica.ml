module Fp = Fsync_hash.Fingerprint
module Error = Fsync_core.Error
module Varint = Fsync_util.Varint
module Io = Fsync_store.Io
module Merkle = Fsync_reconcile.Merkle
module Scope = Fsync_obs.Scope

type entry = {
  vv : Version_vector.t;
  author : string;
  present : bool;
  fp : Fp.t;
  len : int;
}

let entry_equal a b =
  Version_vector.equal a.vv b.vv
  && String.equal a.author b.author
  && Bool.equal a.present b.present
  && Fp.equal a.fp b.fp
  && Int.equal a.len b.len

let put_entry b e =
  Version_vector.put_vv b e.vv;
  Varint.write b (String.length e.author);
  Buffer.add_string b e.author;
  Buffer.add_char b (if e.present then '\001' else '\000');
  Buffer.add_string b (Fp.to_raw e.fp);
  Varint.write b e.len

let read_varint msg ~pos what =
  match Varint.read msg ~pos with
  | v -> v
  | exception Invalid_argument _ ->
      Error.truncated "Replica: bad varint in %s" what

let get_string msg ~pos what =
  let len, p = read_varint msg ~pos what in
  if len < 0 || p + len > String.length msg then
    Error.truncated "Replica: %s of %d bytes overruns" what len;
  (String.sub msg p len, p + len)

let get_entry msg ~pos =
  let vv, pos = Version_vector.get_vv msg ~pos in
  let author, pos = get_string msg ~pos "author" in
  if pos + 1 + Fp.size_bytes > String.length msg then
    Error.truncated "Replica: entry flags overrun";
  let present = Char.equal msg.[pos] '\001' in
  let pos = pos + 1 in
  let fp = Fp.of_raw (String.sub msg pos Fp.size_bytes) in
  let pos = pos + Fp.size_bytes in
  let len, pos = read_varint msg ~pos "content length" in
  if len < 0 then Error.malformed "Replica: negative content length";
  ({ vv; author; present; fp; len }, pos)

let entry_digest e =
  let b = Buffer.create 64 in
  put_entry b e;
  Fp.of_string (Buffer.contents b)

let swarm_dir = ".fsync-swarm"

let valid_path path =
  (not (String.equal path ""))
  && (not (Char.equal path.[0] '/'))
  && (not (String.exists (fun c -> Char.equal c '\\' || Char.equal c '\000') path))
  && List.for_all
       (fun seg ->
         (not (String.equal seg ""))
         && (not (String.equal seg "."))
         && (not (String.equal seg ".."))
         && not (String.equal seg swarm_dir))
       (String.split_on_char '/' path)

type t = {
  io : Io.t;
  root : string;
  peer : string;
  table : (string, entry) Hashtbl.t;
  cache : (string, string) Hashtbl.t; (* contents of present entries *)
  mutable tree : Merkle.t;
}

let peer t = t.peer
let root t = t.root

let abs t path = Filename.concat t.root path
let vectors_path t = Filename.concat (Filename.concat t.root swarm_dir) "vectors"
let staging_path t = Filename.concat (Filename.concat t.root swarm_dir) "staging"

let fp_empty = Fp.of_string ""

let entries t =
  List.sort
    (fun (a, _) (b, _) -> String.compare a b)
    (Hashtbl.fold (fun p e acc -> (p, e) :: acc) t.table [])

let find t path = Hashtbl.find_opt t.table path

let content t path = Hashtbl.find_opt t.cache path

let files t =
  List.sort
    (fun (a, _) (b, _) -> String.compare a b)
    (Hashtbl.fold (fun p c acc -> (p, c) :: acc) t.cache [])

let merkle t = t.tree
let summary t = Fp.of_raw (Merkle.root_digest t.tree)

(* ---- vector-table persistence ---- *)

let magic = "fsync-swarm/1\n"

let flush t =
  let b = Buffer.create 4096 in
  Buffer.add_string b magic;
  let es = entries t in
  Varint.write b (List.length es);
  List.iter
    (fun (path, e) ->
      Varint.write b (String.length path);
      Buffer.add_string b path;
      put_entry b e)
    es;
  Io.write_file_atomic t.io ~staging:(vectors_path t ^ ".tmp")
    ~dest:(vectors_path t) (Buffer.contents b)

let load_table io path =
  let msg = io.Io.read_file path in
  if
    String.length msg < String.length magic
    || not (String.equal (String.sub msg 0 (String.length magic)) magic)
  then Error.malformed "Replica: %s is not a vector table" path;
  let pos = String.length magic in
  let count, pos = read_varint msg ~pos "entry count" in
  if count < 0 || count > (String.length msg - pos) / 2 then
    Error.truncated "Replica: %d table entries overrun %d bytes" count
      (String.length msg);
  let pos = ref pos in
  List.init count (fun _ ->
      let path, p = get_string msg ~pos:!pos "table path" in
      let e, p = get_entry msg ~pos:p in
      pos := p;
      (path, e))

(* ---- disk scan ---- *)

let rec walk io dir rel acc =
  Array.fold_left
    (fun acc name ->
      if String.equal name swarm_dir then acc
      else
        let sub = Filename.concat dir name in
        let rel = if String.equal rel "" then name else rel ^ "/" ^ name in
        if io.Io.is_dir sub then walk io sub rel acc else rel :: acc)
    acc (io.Io.readdir dir)

let load ?(io = Io.real) ?(scope = Scope.disabled) ~root ~peer () =
  Io.mkdir_p io (Filename.concat root swarm_dir);
  let table = Hashtbl.create 64 in
  let vectors = Filename.concat (Filename.concat root swarm_dir) "vectors" in
  if io.Io.exists vectors then
    List.iter (fun (p, e) -> Hashtbl.replace table p e) (load_table io vectors);
  let cache = Hashtbl.create 64 in
  let on_disk = List.sort String.compare (walk io root "" []) in
  let changed = ref false in
  List.iter
    (fun path ->
      let content = io.Io.read_file (Filename.concat root path) in
      let fp = Fp.of_string content in
      (match Hashtbl.find_opt table path with
      | Some e when e.present && Fp.equal e.fp fp -> ()
      | Some e ->
          (* Bytes moved underneath the recorded state (an offline edit,
             or a crash between content and table writes): a fresh local
             edit, never a silent adoption. *)
          changed := true;
          Scope.incr scope "swarm_reload_edits";
          Hashtbl.replace table path
            {
              vv = Version_vector.bump e.vv peer;
              author = peer;
              present = true;
              fp;
              len = String.length content;
            }
      | None ->
          changed := true;
          Hashtbl.replace table path
            {
              vv = Version_vector.bump Version_vector.empty peer;
              author = peer;
              present = true;
              fp;
              len = String.length content;
            });
      Hashtbl.replace cache path content)
    on_disk;
  (* Entries that claim presence but whose file vanished: an offline
     delete — tombstone it so the delete propagates. *)
  Hashtbl.iter
    (fun path e ->
      if e.present && not (Hashtbl.mem cache path) then begin
        changed := true;
        Scope.incr scope "swarm_reload_deletes";
        Hashtbl.replace table path
          {
            vv = Version_vector.bump e.vv peer;
            author = peer;
            present = false;
            fp = fp_empty;
            len = 0;
          }
      end)
    (Hashtbl.copy table);
  let tree =
    Merkle.build ~scope
      (List.sort
         (fun (a, _) (b, _) -> String.compare a b)
         (Hashtbl.fold (fun p e acc -> (p, entry_digest e) :: acc) table []))
  in
  let t = { io; root; peer; table; cache; tree } in
  if !changed then flush t;
  t

(* ---- mutation ---- *)

let check_path path =
  if not (valid_path path) then
    Error.malformed "Replica: invalid path %S" path

let install_content t path content =
  let dest = abs t path in
  Io.mkdir_p t.io (Filename.dirname dest);
  Io.write_file_atomic t.io ~staging:(staging_path t) ~dest content

let record t path e content_opt =
  Hashtbl.replace t.table path e;
  (match content_opt with
  | Some c when e.present -> Hashtbl.replace t.cache path c
  | Some _ | None -> Hashtbl.remove t.cache path);
  t.tree <- Merkle.set t.tree path (entry_digest e)

let set t ~path content =
  check_path path;
  let fp = Fp.of_string content in
  match find t path with
  | Some e when e.present && Fp.equal e.fp fp -> ()
  | prior ->
      let vv =
        Version_vector.bump
          (match prior with Some e -> e.vv | None -> Version_vector.empty)
          t.peer
      in
      install_content t path content;
      record t path
        { vv; author = t.peer; present = true; fp; len = String.length content }
        (Some content);
      flush t

let delete t path =
  check_path path;
  match find t path with
  | None | Some { present = false; _ } -> ()
  | Some e ->
      if t.io.Io.exists (abs t path) then t.io.Io.unlink (abs t path);
      record t path
        {
          vv = Version_vector.bump e.vv t.peer;
          author = t.peer;
          present = false;
          fp = fp_empty;
          len = 0;
        }
        None;
      flush t

let install t ~path e content_opt =
  check_path path;
  (match (e.present, content_opt) with
  | true, None ->
      Error.malformed "Replica: install of present %s without content" path
  | true, Some c ->
      if not (Fp.equal (Fp.of_string c) e.fp) then
        Error.fail
          (Error.Verification_failed
             (Printf.sprintf "Replica: installed content for %s fails its \
                              fingerprint" path));
      install_content t path c
  | false, _ -> if t.io.Io.exists (abs t path) then t.io.Io.unlink (abs t path));
  record t path e (if e.present then content_opt else None)
