(* RFC 1321 MD5, using native ints masked to 32 bits (the native int is 63
   bits wide, so 32-bit arithmetic via masking is exact). *)

let mask = 0xFFFFFFFF

let k =
  (* K[i] = floor(|sin(i+1)| * 2^32), per the RFC. *)
  Array.init 64 (fun i ->
      Int64.to_int (Int64.of_float (Float.abs (sin (float_of_int (i + 1))) *. 4294967296.0)))

let shifts =
  [| 7; 12; 17; 22; 7; 12; 17; 22; 7; 12; 17; 22; 7; 12; 17; 22;
     5;  9; 14; 20; 5;  9; 14; 20; 5;  9; 14; 20; 5;  9; 14; 20;
     4; 11; 16; 23; 4; 11; 16; 23; 4; 11; 16; 23; 4; 11; 16; 23;
     6; 10; 15; 21; 6; 10; 15; 21; 6; 10; 15; 21; 6; 10; 15; 21 |]

type ctx = {
  mutable a : int;
  mutable b : int;
  mutable c : int;
  mutable d : int;
  block : Bytes.t;          (* 64-byte staging buffer *)
  mutable block_len : int;  (* bytes currently staged *)
  mutable total_len : int;  (* message bytes fed so far *)
  m : int array;            (* decoded 16-word schedule, reused *)
}

let init () =
  {
    a = 0x67452301;
    b = 0xefcdab89;
    c = 0x98badcfe;
    d = 0x10325476;
    block = Bytes.create 64;
    block_len = 0;
    total_len = 0;
    m = Array.make 16 0;
  }

let rotl32 x n = ((x lsl n) lor (x lsr (32 - n))) land mask

let compress ctx get =
  (* [get i] returns byte i of the current 64-byte block. *)
  let m = ctx.m in
  for w = 0 to 15 do
    m.(w) <-
      get (4 * w)
      lor (get ((4 * w) + 1) lsl 8)
      lor (get ((4 * w) + 2) lsl 16)
      lor (get ((4 * w) + 3) lsl 24)
  done;
  let a = ref ctx.a and b = ref ctx.b and c = ref ctx.c and d = ref ctx.d in
  for i = 0 to 63 do
    let f, g =
      if i < 16 then ((!b land !c) lor (lnot !b land !d) land mask, i)
      else if i < 32 then ((!d land !b) lor (lnot !d land !c) land mask, ((5 * i) + 1) land 15)
      else if i < 48 then (!b lxor !c lxor !d, ((3 * i) + 5) land 15)
      else ((!c lxor (!b lor (lnot !d land mask))) land mask, (7 * i) land 15)
    in
    let f = (f + !a + k.(i) + m.(g)) land mask in
    a := !d;
    d := !c;
    c := !b;
    b := (!b + rotl32 f shifts.(i)) land mask
  done;
  ctx.a <- (ctx.a + !a) land mask;
  ctx.b <- (ctx.b + !b) land mask;
  ctx.c <- (ctx.c + !c) land mask;
  ctx.d <- (ctx.d + !d) land mask

let compress_block ctx = compress ctx (fun i -> Char.code (Bytes.unsafe_get ctx.block i))

let feed ctx s ~pos ~len =
  if pos < 0 || len < 0 || pos + len > String.length s then
    invalid_arg "Md5.feed: bad range";
  ctx.total_len <- ctx.total_len + len;
  let i = ref pos and remaining = ref len in
  (* Fill a partial staging buffer first. *)
  if ctx.block_len > 0 then begin
    let take = min !remaining (64 - ctx.block_len) in
    Bytes.blit_string s !i ctx.block ctx.block_len take;
    ctx.block_len <- ctx.block_len + take;
    i := !i + take;
    remaining := !remaining - take;
    if ctx.block_len = 64 then begin
      compress_block ctx;
      ctx.block_len <- 0
    end
  end;
  (* Whole blocks directly from the input string. *)
  while !remaining >= 64 do
    let base = !i in
    compress ctx (fun j -> Char.code (String.unsafe_get s (base + j)));
    i := !i + 64;
    remaining := !remaining - 64
  done;
  if !remaining > 0 then begin
    Bytes.blit_string s !i ctx.block 0 !remaining;
    ctx.block_len <- !remaining
  end

let feed_string ctx s = feed ctx s ~pos:0 ~len:(String.length s)

let finalize ctx =
  let bit_len = ctx.total_len * 8 in
  (* Padding: 0x80, zeros, 8-byte little-endian bit length. *)
  let pad_len =
    let r = (ctx.total_len + 1) mod 64 in
    if r <= 56 then 56 - r + 1 else 64 - r + 56 + 1
  in
  let pad = Bytes.make (pad_len + 8) '\000' in
  Bytes.set pad 0 '\x80';
  for i = 0 to 7 do
    Bytes.set pad (pad_len + i) (Char.chr ((bit_len lsr (8 * i)) land 0xff))
  done;
  feed ctx (Bytes.unsafe_to_string pad) ~pos:0 ~len:(Bytes.length pad);
  (* total_len now includes padding but is no longer used *)
  assert (ctx.block_len = 0);
  let out = Bytes.create 16 in
  let put word off =
    for i = 0 to 3 do
      Bytes.set out (off + i) (Char.chr ((word lsr (8 * i)) land 0xff))
    done
  in
  put ctx.a 0;
  put ctx.b 4;
  put ctx.c 8;
  put ctx.d 12;
  Bytes.unsafe_to_string out

let digest_sub s ~pos ~len =
  let ctx = init () in
  feed ctx s ~pos ~len;
  finalize ctx

let digest s = digest_sub s ~pos:0 ~len:(String.length s)

let truncated_of_digest dg ~bits =
  if bits < 0 || bits > 57 then invalid_arg "Md5.truncated: bits out of [0,57]";
  let rec loop i acc =
    if i * 8 >= bits then acc land ((1 lsl bits) - 1)
    else loop (i + 1) (acc lor (Char.code dg.[i] lsl (8 * i)))
  in
  if bits = 0 then 0 else loop 0 0

let truncated s ~bits = truncated_of_digest (digest s) ~bits

let truncated_digest dg ~bits =
  if String.length dg <> 16 then invalid_arg "Md5.truncated_digest: want 16 bytes";
  truncated_of_digest dg ~bits

let truncated_sub s ~pos ~len ~bits = truncated_of_digest (digest_sub s ~pos ~len) ~bits

let hex s = Fsync_util.Bytes_util.to_hex (digest s)
