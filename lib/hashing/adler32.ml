let base = 65521

type t = { a : int; b : int; len : int }

let of_sub s ~pos ~len =
  let a = ref 1 and b = ref 0 in
  for i = pos to pos + len - 1 do
    a := !a + Char.code (String.unsafe_get s i);
    b := !b + !a
  done;
  { a = !a mod base; b = !b mod base; len }

let roll t ~out ~in_ =
  let co = Char.code out and ci = Char.code in_ in
  (* a' = a - out + in; b' = b - len*out + a' - 1; keep values non-negative
     before the mod since OCaml's mod follows the dividend's sign. *)
  let a' = (t.a - co + ci + base) mod base in
  let b' = (t.b - (t.len * co mod base) + a' - 1 + (base * (t.len + 2))) mod base in
  { a = a'; b = b'; len = t.len }

let value t = (t.b lsl 16) lor t.a

let equal_value x y = Int.equal (value x) (value y)

let digest s = value (of_sub s ~pos:0 ~len:(String.length s))
