type t = int

(* Odd 63-bit constant (golden-ratio multiplier); native int arithmetic
   wraps mod 2^63, giving us the modulus for free. *)
let base = 0x1E3779B97F4A7C15

(* Inverse of [base] mod 2^63 by Newton iteration: x' = x * (2 - b*x). *)
let base_inv =
  let rec refine x n = if n = 0 then x else refine (x * (2 - (base * x))) (n - 1) in
  refine 1 6

let pow_gen b n =
  let rec loop b n acc =
    if n = 0 then acc
    else
      let acc = if n land 1 = 1 then acc * b else acc in
      loop (b * b) (n lsr 1) acc
  in
  if n < 0 then invalid_arg "Poly_hash.pow: negative" else loop b n 1

let pow n = pow_gen base n
let pow_inv n = pow_gen base_inv n

let byte_term c = Char.code c + 0x17

let hash_sub s ~pos ~len =
  if pos < 0 || len < 0 || pos + len > String.length s then
    invalid_arg "Poly_hash.hash_sub: bad range";
  let h = ref 0 in
  for i = pos to pos + len - 1 do
    h := (!h * base) + byte_term (String.unsafe_get s i)
  done;
  !h

let combine ~left ~right ~right_len = (left * pow right_len) + right

let derive_right ~parent ~left ~right_len = parent - (left * pow right_len)

let derive_left ~parent ~right ~right_len = (parent - right) * pow_inv right_len

let trunc_mask bits =
  if bits < 0 || bits > 57 then invalid_arg "Poly_hash.truncate: bits out of [0,57]";
  (1 lsl bits) - 1

let truncate h ~bits = h land trunc_mask bits

let derive_right_trunc ~parent ~left ~right_len ~bits =
  truncate (derive_right ~parent ~left ~right_len) ~bits

let derive_left_trunc ~parent ~right ~right_len ~bits =
  truncate (derive_left ~parent ~right ~right_len) ~bits

let window_hashes data ~window ~bits =
  if window <= 0 then invalid_arg "Poly_hash.window_hashes: window <= 0";
  let n = String.length data in
  let count = n - window + 1 in
  if count <= 0 then [||]
  else begin
    let mask = trunc_mask bits in
    let top = pow (window - 1) in
    let out = Array.make count 0 in
    let h = ref 0 in
    for i = 0 to window - 1 do
      h := (!h * base) + byte_term (String.unsafe_get data i)
    done;
    out.(0) <- !h land mask;
    for p = 1 to count - 1 do
      let outgoing = byte_term (String.unsafe_get data (p - 1)) in
      let incoming = byte_term (String.unsafe_get data (p + window - 1)) in
      h := ((!h - (outgoing * top)) * base) + incoming;
      Array.unsafe_set out p (!h land mask)
    done;
    out
  end

module Roller = struct
  type roller = {
    data : string;
    window : int;
    top_pow : int; (* base^(window-1) *)
    mutable h : t;
    mutable p : int;
  }

  let create data ~window ~pos =
    if window <= 0 then invalid_arg "Poly_hash.Roller.create: window <= 0";
    if pos < 0 || pos + window > String.length data then
      invalid_arg "Poly_hash.Roller.create: window out of bounds";
    {
      data;
      window;
      top_pow = pow (window - 1);
      h = hash_sub data ~pos ~len:window;
      p = pos;
    }

  let value r = r.h
  let pos r = r.p
  let can_roll r = r.p + r.window < String.length r.data

  let roll r =
    if not (can_roll r) then invalid_arg "Poly_hash.Roller.roll: at end";
    let outgoing = byte_term (String.unsafe_get r.data r.p) in
    let incoming = byte_term (String.unsafe_get r.data (r.p + r.window)) in
    (* h' = (h - c_out * r^(w-1)) * r + c_in *)
    r.h <- ((r.h - (outgoing * r.top_pow)) * base) + incoming;
    r.p <- r.p + 1
end
