(** MD5 (RFC 1321), implemented from scratch.

    Used for the strong verification hashes of the protocol (§5.3) and for
    whole-file fingerprints.  Cryptographic strength is irrelevant here; we
    need a hash whose collision probability on non-adversarial data is
    2^-k for k transmitted bits. *)

type ctx

val init : unit -> ctx
val feed : ctx -> string -> pos:int -> len:int -> unit
val feed_string : ctx -> string -> unit
val finalize : ctx -> string
(** 16-byte digest.  The context must not be used afterwards. *)

val digest : string -> string
(** One-shot 16-byte digest. *)

val digest_sub : string -> pos:int -> len:int -> string

val truncated : string -> bits:int -> int
(** [truncated data ~bits] is the low [bits] (<= 57) of the digest,
    little-endian over the first digest bytes: the cheap way to derive a
    k-bit verification hash from MD5 as the paper does with MD4/MD5. *)

val truncated_digest : string -> bits:int -> int
(** Like {!truncated} but over an already-computed 16-byte digest. *)

val truncated_sub : string -> pos:int -> len:int -> bits:int -> int

val hex : string -> string
(** Hex of the 16-byte digest of the argument. *)
