(** Rolling, decomposable, bit-prefix-decomposable string hash (§5.5).

    The paper requires a hash function that is simultaneously
    - {e rolling}: the hash of [s[i+1 .. i+1+len)] is computable in O(1)
      from the hash of [s[i .. i+len)];
    - {e composable}: the hash of a concatenation is computable from the
      hashes of the two halves;
    - {e decomposable}: the hash of the right (or left) sibling block is
      computable from the hashes of the parent block and of the other
      sibling, so only one hash per sibling pair is ever transmitted;
    - {e bit-prefix decomposable}: the above still works when only the low
      [k] bits of each hash are known, for any [k].

    We use the positional polynomial hash
    [H(s) = sum_i c_i * r^(len-1-i) mod 2^63] with [c_i = s[i] + 0x17] and
    an odd base [r], evaluated in native wrap-around integer arithmetic
    (OCaml's int is exactly 63 bits, so the modulus is free and nothing
    boxes).  Then [H(left ++ right) = H(left) * r^|right| + H(right)] and
    both siblings are recoverable from parent plus the other.  Because
    addition, subtraction and multiplication by the odd constants [r^n]
    and [r^-n] are stable on low bits modulo 2^63, the identities hold
    bit-prefix-wise — exactly the property §5.5 asks for.  The trade-off
    (low bits mix less well than a cryptographic hash) is absorbed by the
    separate verification hashes of §5.3. *)

type t = int
(** Full-width (63-bit, wrap-around) hash value, position independent. *)

val base : int

val pow : int -> t
(** [r^n mod 2^63].  O(log n). *)

val pow_inv : int -> t
(** [r^-n mod 2^63]. *)

val hash_sub : string -> pos:int -> len:int -> t
(** Direct O(len) evaluation. *)

val window_hashes : string -> window:int -> bits:int -> int array
(** Truncated hash of every window position, computed with one rolling
    pass — the bulk primitive behind the client's candidate index. *)

val combine : left:t -> right:t -> right_len:int -> t
(** Hash of the concatenation. *)

val derive_right : parent:t -> left:t -> right_len:int -> t
(** Hash of the right sibling given parent and left sibling. *)

val derive_left : parent:t -> right:t -> right_len:int -> t
(** Hash of the left sibling given parent and right sibling. *)

val truncate : t -> bits:int -> int
(** Low [bits] (<= 57) as a non-negative int. *)

val derive_right_trunc : parent:int -> left:int -> right_len:int -> bits:int -> int
(** Bit-prefix decomposition: derive the low [bits] of the right sibling
    hash from the low [bits] of parent and left hashes. *)

val derive_left_trunc : parent:int -> right:int -> right_len:int -> bits:int -> int

module Roller : sig
  (** Constant-time sliding window over a string. *)

  type roller

  val create : string -> window:int -> pos:int -> roller
  (** Roller for [s[pos .. pos+window)]; [pos + window <= length s]. *)

  val value : roller -> t
  val pos : roller -> int

  val can_roll : roller -> bool
  val roll : roller -> unit
  (** Advance the window one byte to the right.
      @raise Invalid_argument when [not (can_roll r)]. *)
end
