(** Whole-file fingerprints (§6.1).

    The protocol begins by exchanging a strong 16-byte hash per file: it
    both detects unchanged files (which are then skipped entirely) and
    catches the residual failure probability of the weak/verification
    hashes, triggering a fallback transfer. *)

type t = private string
(** 16 bytes. *)

val of_string : string -> t
(** Fingerprint of the given contents. *)

val equal : t -> t -> bool
val to_hex : t -> string
val to_raw : t -> string
val of_raw : string -> t
(** @raise Invalid_argument unless exactly 16 bytes. *)

val size_bytes : int
(** Wire size (16). *)
