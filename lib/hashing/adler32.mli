(** Adler-32 checksum with O(1) rolling, as used by rsync's weak hash.

    The checksum of a window [s[i .. i+len)] is [(b lsl 16) lor a] where
    [a = (1 + sum of bytes) mod 65521] and [b = (sum of prefix sums) mod
    65521].  Rolling one byte to the right costs two additions and two
    subtractions (§2.2 of the paper: the "rolling checksum" that lets the
    server slide block boundaries by one character in constant time). *)

type t = { a : int; b : int; len : int }

val of_sub : string -> pos:int -> len:int -> t
(** Checksum of [s[pos .. pos+len)].  Bounds are the caller's problem. *)

val roll : t -> out:char -> in_:char -> t
(** Slide the window one byte: remove [out] from the front, append [in_]. *)

val value : t -> int
(** The packed 32-bit value [(b lsl 16) lor a]. *)

val equal_value : t -> t -> bool

val digest : string -> int
(** Checksum of a whole string. *)
