(** MD4 (RFC 1320), implemented from scratch.

    rsync historically used MD4 for its strong block checksum; we keep a
    faithful implementation so the rsync baseline matches the tool the paper
    compares against ("The reliable checksum is implemented using MD4, but
    only two bytes of the MD4 hash are used", §2.2). *)

val digest : string -> string
(** 16-byte digest. *)

val digest_sub : string -> pos:int -> len:int -> string

val truncated_sub : string -> pos:int -> len:int -> bytes_used:int -> string
(** First [bytes_used] bytes of the digest (rsync sends 2 by default). *)

val hex : string -> string
