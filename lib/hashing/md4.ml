(* RFC 1320 MD4 over native ints masked to 32 bits. *)

let mask = 0xFFFFFFFF

let rotl32 x n = ((x lsl n) lor (x lsr (32 - n))) land mask

let compress state m =
  let a = ref state.(0) and b = ref state.(1) and c = ref state.(2) and d = ref state.(3) in
  let f x y z = ((x land y) lor (lnot x land z)) land mask in
  let g x y z = ((x land y) lor (x land z) lor (y land z)) land mask in
  let h x y z = x lxor y lxor z in
  let op fn acc x s add = rotl32 ((acc + fn () + m.(x) + add) land mask) s in
  (* Round 1 *)
  let r1 x s =
    let acc = op (fun () -> f !b !c !d) !a x s 0 in
    a := !d; d := !c; c := !b; b := acc
  in
  List.iter (fun (x, s) -> r1 x s)
    [ (0,3);(1,7);(2,11);(3,19);(4,3);(5,7);(6,11);(7,19);
      (8,3);(9,7);(10,11);(11,19);(12,3);(13,7);(14,11);(15,19) ];
  (* Round 2, additive constant 0x5a827999 *)
  let r2 x s =
    let acc = op (fun () -> g !b !c !d) !a x s 0x5a827999 in
    a := !d; d := !c; c := !b; b := acc
  in
  List.iter (fun (x, s) -> r2 x s)
    [ (0,3);(4,5);(8,9);(12,13);(1,3);(5,5);(9,9);(13,13);
      (2,3);(6,5);(10,9);(14,13);(3,3);(7,5);(11,9);(15,13) ];
  (* Round 3, additive constant 0x6ed9eba1 *)
  let r3 x s =
    let acc = op (fun () -> h !b !c !d) !a x s 0x6ed9eba1 in
    a := !d; d := !c; c := !b; b := acc
  in
  List.iter (fun (x, s) -> r3 x s)
    [ (0,3);(8,9);(4,11);(12,15);(2,3);(10,9);(6,11);(14,15);
      (1,3);(9,9);(5,11);(13,15);(3,3);(11,9);(7,11);(15,15) ];
  state.(0) <- (state.(0) + !a) land mask;
  state.(1) <- (state.(1) + !b) land mask;
  state.(2) <- (state.(2) + !c) land mask;
  state.(3) <- (state.(3) + !d) land mask

let digest_sub s ~pos ~len =
  if pos < 0 || len < 0 || pos + len > String.length s then
    invalid_arg "Md4.digest_sub: bad range";
  let state = [| 0x67452301; 0xefcdab89; 0x98badcfe; 0x10325476 |] in
  (* Build the padded message: original || 0x80 || zeros || 8-byte length. *)
  let bit_len = len * 8 in
  let pad_zeros =
    let r = (len + 1) mod 64 in
    if r <= 56 then 56 - r else 64 - r + 56
  in
  let total = len + 1 + pad_zeros + 8 in
  let m = Array.make 16 0 in
  let get_byte i =
    if i < len then Char.code (String.unsafe_get s (pos + i))
    else if Int.equal i len then 0x80
    else if i < len + 1 + pad_zeros then 0
    else
      let j = i - (len + 1 + pad_zeros) in
      (bit_len lsr (8 * j)) land 0xff
  in
  let nblocks = total / 64 in
  for blk = 0 to nblocks - 1 do
    for w = 0 to 15 do
      let o = (blk * 64) + (4 * w) in
      m.(w) <-
        get_byte o
        lor (get_byte (o + 1) lsl 8)
        lor (get_byte (o + 2) lsl 16)
        lor (get_byte (o + 3) lsl 24)
    done;
    compress state m
  done;
  let out = Bytes.create 16 in
  Array.iteri
    (fun wi word ->
      for i = 0 to 3 do
        Bytes.set out ((4 * wi) + i) (Char.chr ((word lsr (8 * i)) land 0xff))
      done)
    state;
  Bytes.unsafe_to_string out

let digest s = digest_sub s ~pos:0 ~len:(String.length s)

let truncated_sub s ~pos ~len ~bytes_used =
  if bytes_used < 1 || bytes_used > 16 then
    invalid_arg "Md4.truncated_sub: bytes_used out of [1,16]";
  String.sub (digest_sub s ~pos ~len) 0 bytes_used

let hex s = Fsync_util.Bytes_util.to_hex (digest s)
