type t = string

let size_bytes = 16

let of_string s = Md5.digest s

let equal = String.equal

let to_hex = Fsync_util.Bytes_util.to_hex

let to_raw t = t

let of_raw s =
  if not (Int.equal (String.length s) size_bytes) then
    invalid_arg "Fingerprint.of_raw: expected 16 bytes";
  s
