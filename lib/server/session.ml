module Fp = Fsync_hash.Fingerprint
module Block_tree = Fsync_core.Block_tree
module Error = Fsync_core.Error
module Deflate = Fsync_compress.Deflate
module Meta_wire = Fsync_collection.Meta_wire
module Scope = Fsync_obs.Scope

type job = { path : string; content : string; fp : Fp.t; has_old : bool }

type file_state = { job : job; tree : Block_tree.t }

type ack_state = { ack_job : job; mutable full_sent : bool }

type phase =
  | Expect_hello
  | Expect_announce
  | Expect_matched of file_state
  | Expect_ack of ack_state
  | Done
  | Failed

type t = {
  config : Msg.sync_config;
  files : (string * string) list;
  root : Fp.t;
  cache : Sigcache.t;
  scope : Scope.t;
  mutable phase : phase;
  mutable queue : job list;
  mutable hashes_total : int;
  mutable hashes_cached : int;
  mutable full_fallbacks : int;
  mutable rounds : int;
}

let create ?(config = Msg.default_sync_config) ?(scope = Scope.disabled)
    ~cache files =
  let config = Msg.validate_sync_config config in
  {
    config;
    files;
    root = Meta_wire.collection_root files;
    cache;
    scope;
    phase = Expect_hello;
    queue = [];
    hashes_total = 0;
    hashes_cached = 0;
    full_fallbacks = 0;
    rounds = 0;
  }

let finished t = match t.phase with Done -> true | _ -> false

let failed t = match t.phase with Failed -> true | _ -> false

let find_file t path =
  match List.find_opt (fun (p, _) -> String.equal p path) t.files with
  | Some (_, content) -> Some content
  | None -> None

(* The verified full-file fallback ('Z' when compression pays, 'R'
   otherwise; never 'D' — the daemon does not hold the client's copy). *)
let full_msg job =
  let z = Deflate.compress job.content in
  let tag, body =
    if String.length z < String.length job.content then ('Z', z)
    else ('R', job.content)
  in
  Msg.Full (Meta_wire.encode_file_msg ~path:job.path ~fp:job.fp ~tag ~body)

(* One round's hash burst: the cached full-level vector indexed by
   [off / size] covers every active block, whichever client asks. *)
let level_hashes t (st : file_state) =
  let size = Block_tree.current_size st.tree in
  let vector, hit =
    Sigcache.find_or_compute t.cache ~fp:st.job.fp ~size
      ~bits:t.config.hash_bits st.job.content
  in
  let hs =
    Array.of_list
      (List.map
         (fun (b : Block_tree.block) -> vector.(b.off / size))
         (Block_tree.active_blocks st.tree))
  in
  t.hashes_total <- t.hashes_total + Array.length hs;
  if hit then t.hashes_cached <- t.hashes_cached + Array.length hs;
  hs

let open_job t job =
  if (not job.has_old) || String.length job.content < 2 * t.config.min_block
  then begin
    (* No old copy to match against, or too small for even one split:
       the verified full transfer is strictly cheaper than a round. *)
    t.phase <- Expect_ack { ack_job = job; full_sent = true };
    [ full_msg job ]
  end
  else begin
    let tree =
      Block_tree.create
        ~file_len:(String.length job.content)
        ~start_block:t.config.start_block
    in
    let st = { job; tree } in
    t.phase <- Expect_matched st;
    [
      Msg.File_begin
        { path = job.path; new_len = String.length job.content; fp = job.fp };
      Msg.Hashes (level_hashes t st);
    ]
  end

let advance t =
  match t.queue with
  | [] ->
      t.phase <- Done;
      [ Msg.Bye { root = t.root } ]
  | job :: rest ->
      t.queue <- rest;
      open_job t job

let on_announce t body =
  let announced = Meta_wire.decode_announce body in
  let changed = ref [] in
  let bits =
    List.map
      (fun (path, client_fp) ->
        match find_file t path with
        | None -> false (* gone from the collection: client deletes *)
        | Some content ->
            let fp = Fp.of_string content in
            if Fp.equal fp client_fp then true
            else begin
              changed := { path; content; fp; has_old = true } :: !changed;
              false
            end)
      announced
  in
  let announced_paths = List.map fst announced in
  let is_announced p = List.exists (String.equal p) announced_paths in
  let new_jobs =
    List.filter_map
      (fun (path, content) ->
        if is_announced path then None
        else
          Some { path; content; fp = Fp.of_string content; has_old = false })
      t.files
  in
  let new_jobs =
    List.sort (fun a b -> String.compare a.path b.path) new_jobs
  in
  let verdict =
    Meta_wire.encode_verdict ~bits
      ~new_paths:(List.map (fun j -> j.path) new_jobs)
  in
  t.queue <- List.rev !changed @ new_jobs;
  Msg.Verdict verdict :: advance t

let on_matched t st bitmap =
  let active = Block_tree.active_blocks st.tree in
  let flags = Msg.decode_bitmap ~count:(List.length active) bitmap in
  List.iteri
    (fun i (b : Block_tree.block) -> if flags.(i) then b.confirmed <- true)
    active;
  t.rounds <- t.rounds + 1;
  match Msg.decide_next ~config:t.config st.tree with
  | `Split ->
      Block_tree.split st.tree;
      [ Msg.Hashes (level_hashes t st) ]
  | `Tail ->
      let buf = Buffer.create 256 in
      List.iter
        (fun (b : Block_tree.block) ->
          Buffer.add_substring buf st.job.content b.off b.len)
        (Block_tree.active_blocks st.tree);
      t.phase <- Expect_ack { ack_job = st.job; full_sent = false };
      [ Msg.Tail (Deflate.compress (Buffer.contents buf)) ]

let on_ack t ack ok =
  if ok then advance t
  else if ack.full_sent then begin
    t.phase <- Failed;
    Error.fail
      (Error.Verification_failed
         (Printf.sprintf "Session: %s rejected after verified full transfer"
            ack.ack_job.path))
  end
  else begin
    ack.full_sent <- true;
    t.full_fallbacks <- t.full_fallbacks + 1;
    Scope.incr t.scope "server_full_fallbacks";
    [ full_msg ack.ack_job ]
  end

let on_message t raw =
  let msg = Msg.decode ~config:t.config raw in
  let replies =
    match (t.phase, msg) with
    | Expect_hello, Msg.Hello { version } ->
        if not (Int.equal version Msg.version) then begin
          t.phase <- Failed;
          Error.malformed "Session: protocol version %d, want %d" version
            Msg.version
        end;
        t.phase <- Expect_announce;
        [
          Msg.Welcome
            {
              version = Msg.version;
              file_count = List.length t.files;
              root = t.root;
              config = t.config;
            };
        ]
    | Expect_announce, Msg.Announce body -> on_announce t body
    | Expect_matched st, Msg.Matched bitmap -> on_matched t st bitmap
    | Expect_ack ack, Msg.File_ack ok -> on_ack t ack ok
    | _, Msg.Error_msg m ->
        t.phase <- Failed;
        Error.fail
          (Error.Disconnected (Printf.sprintf "Session: peer error: %s" m))
    | _, other ->
        t.phase <- Failed;
        Error.malformed "Session: unexpected %s" (Msg.label other)
  in
  List.map (fun m -> Msg.encode ~config:t.config m) replies

type stats = {
  hashes_total : int;
  hashes_cached : int;
  full_fallbacks : int;
  rounds : int;
}

let stats (t : t) =
  {
    hashes_total = t.hashes_total;
    hashes_cached = t.hashes_cached;
    full_fallbacks = t.full_fallbacks;
    rounds = t.rounds;
  }
