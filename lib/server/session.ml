module Fp = Fsync_hash.Fingerprint
module Error = Fsync_core.Error
module Deflate = Fsync_compress.Deflate
module Meta_wire = Fsync_collection.Meta_wire
module Scope = Fsync_obs.Scope
module Trace_id = Fsync_obs.Trace_id

module Store = Fsync_store.Store

type job = Serve_file.job = {
  path : string;
  content : string;
  fp : Fp.t;
  has_old : bool;
}

type push_file = {
  p_path : string;
  p_len : int;
  p_fp : Fp.t;
  p_manifest : (Fp.t * int) list;
  p_needed : bool array;
  mutable p_retried : bool;
}

type phase =
  | Expect_hello
  | Expect_announce
  | Expect_matched of Serve_file.t
  | Expect_ack of Serve_file.t
  | Expect_push
  | Expect_chunks of push_file
  | Done
  | Failed

type t = {
  config : Msg.sync_config;
  files : (string * string) list;
  root : Fp.t;
  cache : Sigcache.t;
  store : Store.t option;
  publish : path:string -> content:string -> unit;
  scope : Scope.t; (* daemon-wide counters, shared across sessions *)
  trace : Scope.t; (* this session's private trace registry, if any *)
  mutable trace_id : Trace_id.t option; (* adopted from Hello, or minted *)
  mutable span_session : int; (* root "session" span; -1 = not open *)
  mutable span_phase : (string * int) option; (* current phase span *)
  mutable phase : phase;
  mutable queue : job list;
  mutable pending_resume : (Fp.t * string) option; (* Resume before Announce *)
  mutable resumed_jobs : int;
  mutable pushed : (string * string) list; (* rev *)
  counters : Serve_file.counters;
  mutable pushed_files : int;
  mutable chunks_uploaded : int;
  mutable chunks_deduped : int;
}

let create ?(config = Msg.default_sync_config) ?(scope = Scope.disabled)
    ?(trace = Scope.disabled) ?store
    ?(publish = fun ~path:_ ~content:_ -> ()) ~cache files =
  let config = Msg.validate_sync_config config in
  {
    config;
    files;
    root = Meta_wire.collection_root files;
    cache;
    store;
    publish;
    scope;
    trace;
    trace_id = None;
    span_session = -1;
    span_phase = None;
    phase = Expect_hello;
    queue = [];
    pending_resume = None;
    resumed_jobs = 0;
    pushed = [];
    counters = Serve_file.fresh_counters ();
    pushed_files = 0;
    chunks_uploaded = 0;
    chunks_deduped = 0;
  }

let finished t = match t.phase with Done -> true | _ -> false

let failed t = match t.phase with Failed -> true | _ -> false

let trace_id t = t.trace_id

(* Live label for [fsync top] / the status doc — what the session is
   waiting on right now, not a span name. *)
let phase_name t =
  match t.phase with
  | Expect_hello -> "hello"
  | Expect_announce -> "announce"
  | Expect_matched _ -> "pull:rounds"
  | Expect_ack _ -> "pull:ack"
  | Expect_push -> "push:idle"
  | Expect_chunks _ -> "push:chunks"
  | Done -> "done"
  | Failed -> "failed"

(* ---- trace spans: one root "session" span, one phase:* child ----

   The phase span stays open across the select-loop waits between
   messages, so the breakdown accounts for wire latency too and the
   phase spans tile the session span (the ≥95% coverage check in
   [fsync trace report] depends on this). *)

let close_phase t =
  (match t.span_phase with
  | Some (_, id) -> Scope.leave t.trace id
  | None -> ());
  t.span_phase <- None

let set_phase t name =
  match t.span_phase with
  | Some (cur, _) when String.equal cur name -> ()
  | _ ->
      close_phase t;
      t.span_phase <- Some (name, Scope.enter t.trace name)

let end_phases t =
  close_phase t;
  if t.span_session >= 0 then begin
    Scope.leave t.trace t.span_session;
    t.span_session <- -1
  end

let sync_phase t =
  match t.phase with
  | Expect_hello -> ()
  | Expect_announce -> set_phase t "phase:metadata"
  | Expect_matched _ -> set_phase t "phase:hash_rounds"
  | Expect_ack _ -> set_phase t "phase:literals"
  | Expect_push | Expect_chunks _ -> set_phase t "phase:push"
  | Done | Failed -> end_phases t

let find_file t path =
  match List.find_opt (fun (p, _) -> String.equal p path) t.files with
  | Some (_, content) -> Some content
  | None -> None

(* A full payload whose manifest is on record and whose chunks are all
   resident is assembled out of the store instead of the in-memory copy
   — the paper's "popular file costs one upload" made visible: the
   probe counts [store_hits], and the end-to-end fingerprint check keeps
   a corrupt store from ever reaching a client. *)
let store_full_content t job =
  match t.store with
  | None -> None
  | Some store ->
      Scope.timed t.trace "store:io" @@ fun () -> (
      match Store.manifest store ~path:job.path with
      | None -> None
      | Some entries ->
          let buf = Buffer.create (String.length job.content) in
          let ok =
            List.for_all
              (fun (cfp, _) ->
                Store.mem store cfp
                &&
                match Store.get store cfp with
                | Some c ->
                    Buffer.add_string buf c;
                    true
                | None -> false)
              entries
          in
          if ok && Fp.equal (Fp.of_string (Buffer.contents buf)) job.fp
          then begin
            Scope.incr t.scope "store_full_served";
            Some (Buffer.contents buf)
          end
          else None)

(* Per-file serving is {!Serve_file} — shared with the swarm gossip
   exchange; the daemon contributes the store-assembled [Full] payloads
   and its fallback counter. *)
let open_job t job =
  let sf =
    Serve_file.create
      ~full_content:(fun job -> store_full_content t job)
      ~on_fallback:(fun () -> Scope.incr t.scope "server_full_fallbacks")
      ~who:"Session" ~config:t.config ~cache:t.cache ~counters:t.counters job
  in
  let msgs = Serve_file.start sf in
  (t.phase <-
     (match Serve_file.expecting sf with
     | `Matched -> Expect_matched sf
     | `Ack | `Done -> Expect_ack sf));
  msgs

let advance t =
  match t.queue with
  | [] ->
      t.phase <- Done;
      [ Msg.Bye { root = t.root } ]
  | job :: rest ->
      t.queue <- rest;
      open_job t job

let on_announce t body =
  let announced = Meta_wire.decode_announce body in
  let changed = ref [] in
  let bits =
    List.map
      (fun (path, client_fp) ->
        match find_file t path with
        | None -> false (* gone from the collection: client deletes *)
        | Some content ->
            let fp = Fp.of_string content in
            if Fp.equal fp client_fp then true
            else begin
              changed := { path; content; fp; has_old = true } :: !changed;
              false
            end)
      announced
  in
  let announced_paths = List.map fst announced in
  let is_announced p = List.exists (String.equal p) announced_paths in
  let new_jobs =
    List.filter_map
      (fun (path, content) ->
        if is_announced path then None
        else
          Some { path; content; fp = Fp.of_string content; has_old = false })
      t.files
  in
  let new_jobs =
    List.sort (fun a b -> String.compare a.path b.path) new_jobs
  in
  let verdict =
    Meta_wire.encode_verdict ~bits
      ~new_paths:(List.map (fun j -> j.path) new_jobs)
  in
  t.queue <- List.rev !changed @ new_jobs;
  (* A resume bitmap from an interrupted session against the same root
     marks jobs whose verified content the client already holds: drop
     them from the queue instead of re-transferring.  The Bye root check
     still covers the skipped files, so a stale claim fails typed.  A
     mismatched root or bitmap length means the world changed under the
     client — ignore the token and serve everything. *)
  (match t.pending_resume with
  | Some (rroot, bitmap) when Fp.equal rroot t.root ->
      let count = List.length announced + List.length new_jobs in
      if Int.equal (String.length bitmap) ((count + 7) / 8) then begin
        let flags = Msg.decode_bitmap ~count bitmap in
        let done_paths = Hashtbl.create 8 in
        List.iteri
          (fun i (p, _) -> if flags.(i) then Hashtbl.replace done_paths p ())
          announced;
        List.iteri
          (fun i j ->
            if flags.(List.length announced + i) then
              Hashtbl.replace done_paths j.path ())
          new_jobs;
        let before = List.length t.queue in
        t.queue <-
          List.filter (fun j -> not (Hashtbl.mem done_paths j.path)) t.queue;
        t.resumed_jobs <- before - List.length t.queue;
        if t.resumed_jobs > 0 then begin
          Scope.incr t.scope "srv_session_resumes";
          Scope.add t.scope "resume_files_skipped" t.resumed_jobs
        end
      end
  | Some _ | None -> ());
  t.pending_resume <- None;
  Msg.Verdict verdict :: advance t

let on_matched t sf bitmap =
  let replies = Serve_file.on_matched sf bitmap in
  (match Serve_file.expecting sf with
  | `Ack -> t.phase <- Expect_ack sf
  | `Matched | `Done -> ());
  replies

let on_ack t sf ok =
  match
    try Serve_file.on_ack sf ok
    with e ->
      t.phase <- Failed;
      raise e
  with
  | `Complete -> advance t
  | `Replies ms -> ms

(* ---- push direction: the client uploads, the store deduplicates ---- *)

let on_push_begin t ~path ~file_len ~fp ~manifest =
  let total = List.fold_left (fun acc (_, l) -> acc + l) 0 manifest in
  if not (Int.equal total file_len) then begin
    t.phase <- Failed;
    Error.malformed "Session: push manifest for %s sums to %d, file is %d"
      path total file_len
  end;
  (* Residency decides the bitmap: without a store every chunk is
     needed, with one only the chunks nobody ever uploaded are. *)
  let needed =
    match t.store with
    | None -> List.map (fun _ -> true) manifest
    | Some store -> List.map (fun (cfp, _) -> not (Store.mem store cfp)) manifest
  in
  List.iter
    (fun n ->
      if n then t.chunks_uploaded <- t.chunks_uploaded + 1
      else t.chunks_deduped <- t.chunks_deduped + 1)
    needed;
  t.phase <-
    Expect_chunks
      {
        p_path = path;
        p_len = file_len;
        p_fp = fp;
        p_manifest = manifest;
        p_needed = Array.of_list needed;
        p_retried = false;
      };
  [ Msg.Chunk_need (Msg.encode_bitmap needed) ]

(* The store let the assembly down (chunk lost or corrupted between the
   bitmap and the read): ask the client for everything once, then give
   up with a typed verification failure. *)
let retry_or_fail t pf what =
  if pf.p_retried then begin
    t.phase <- Failed;
    Error.fail
      (Error.Verification_failed
         (Printf.sprintf "Session: push of %s failed after store retry (%s)"
            pf.p_path what))
  end
  else begin
    pf.p_retried <- true;
    Array.fill pf.p_needed 0 (Array.length pf.p_needed) true;
    Scope.incr t.scope "push_store_retries";
    [ Msg.Chunk_need (Msg.encode_bitmap (Array.to_list pf.p_needed)) ]
  end

let on_chunk_data t pf z =
  let literals = Deflate.decompress z in
  let buf = Buffer.create pf.p_len in
  let received = ref [] in
  let cursor = ref 0 in
  let store_miss = ref None in
  List.iteri
    (fun i (cfp, len) ->
      match !store_miss with
      | Some _ -> ()
      | None ->
          if pf.p_needed.(i) then begin
            if !cursor + len > String.length literals then begin
              t.phase <- Failed;
              Error.truncated
                "Session: push literals for %s end inside chunk %d" pf.p_path i
            end;
            let chunk = String.sub literals !cursor len in
            cursor := !cursor + len;
            (* An uploaded chunk that does not hash to its manifest key
               is the client's fault — typed teardown, no retry. *)
            if not (Fp.equal (Fp.of_string chunk) cfp) then begin
              t.phase <- Failed;
              Error.malformed "Session: pushed chunk %d of %s fails its hash"
                i pf.p_path
            end;
            received := chunk :: !received;
            Buffer.add_string buf chunk
          end
          else
            match t.store with
            | None -> store_miss := Some "no store behind a dedup bitmap"
            | Some store -> (
                match Store.get store cfp with
                | Some chunk when Fp.equal (Fp.of_string chunk) cfp ->
                    Buffer.add_string buf chunk
                | Some _ ->
                    store_miss :=
                      Some (Printf.sprintf "chunk %s corrupt" (Fp.to_hex cfp))
                | None ->
                    store_miss :=
                      Some (Printf.sprintf "chunk %s vanished" (Fp.to_hex cfp))))
    pf.p_manifest;
  match !store_miss with
  | Some what -> retry_or_fail t pf what
  | None ->
      if not (Int.equal !cursor (String.length literals)) then begin
        t.phase <- Failed;
        Error.malformed "Session: %d stray literal bytes after push of %s"
          (String.length literals - !cursor)
          pf.p_path
      end;
      let content = Buffer.contents buf in
      if not (Fp.equal (Fp.of_string content) pf.p_fp) then
        retry_or_fail t pf "assembled file fails its fingerprint"
      else begin
        (match t.store with
        | Some store ->
            Scope.timed t.trace "store:io" (fun () ->
                List.iter
                  (fun chunk -> ignore (Store.put store chunk))
                  (List.rev !received);
                Store.set_manifest store ~path:pf.p_path
                  (List.map fst pf.p_manifest))
        | None -> ());
        t.publish ~path:pf.p_path ~content;
        t.pushed <- (pf.p_path, content) :: t.pushed;
        t.pushed_files <- t.pushed_files + 1;
        Scope.incr t.scope "push_files";
        t.phase <- Expect_push;
        [ Msg.File_ack true ]
      end

let on_message t raw =
  let msg = Msg.decode ~config:t.config raw in
  let dispatch () =
    match (t.phase, msg) with
    | Expect_hello, Msg.Hello { version; trace; swarm = _ } ->
        (try Handshake.check_version ~who:"Session" version
         with e ->
           t.phase <- Failed;
           raise e);
        (* Adopt the client's trace id, or mint one for a v1 peer that
           sent none — the event log wants every session identifiable
           either way. *)
        let id = Handshake.adopt_trace trace in
        t.trace_id <- Some id;
        (match Scope.registry t.trace with
        | Some reg ->
            Fsync_obs.Registry.set_trace reg ~trace:(Trace_id.to_hex id)
              ~role:"server"
        | None -> ());
        t.span_session <- Scope.enter t.trace "session";
        t.phase <- Expect_announce;
        [
          Handshake.welcome ~client_version:version
            ~file_count:(List.length t.files) ~root:t.root ~config:t.config;
        ]
    | Expect_announce, Msg.Resume { root; bitmap } ->
        t.pending_resume <- Some (root, bitmap);
        []
    | Expect_announce, Msg.Announce body -> on_announce t body
    | Expect_matched st, Msg.Matched bitmap -> on_matched t st bitmap
    | Expect_ack ack, Msg.File_ack ok -> on_ack t ack ok
    | (Expect_announce | Expect_push), Msg.Push_begin { path; file_len; fp; manifest }
      ->
        on_push_begin t ~path ~file_len ~fp ~manifest
    | Expect_chunks pf, Msg.Chunk_data z -> on_chunk_data t pf z
    | (Expect_announce | Expect_push), Msg.Push_done ->
        t.phase <- Done;
        [ Msg.Bye { root = Meta_wire.collection_root (List.rev t.pushed) } ]
    | _, Msg.Error_msg m ->
        t.phase <- Failed;
        Error.fail
          (Error.Disconnected (Printf.sprintf "Session: peer error: %s" m))
    | _, other ->
        t.phase <- Failed;
        Error.malformed "Session: unexpected %s" (Msg.label other)
  in
  let replies =
    try
      let replies = dispatch () in
      sync_phase t;
      replies
    with e ->
      (* Typed teardowns set [Failed] before raising; close the spans so
         a partial trace still exports well-nested. *)
      end_phases t;
      raise e
  in
  List.map (fun m -> Msg.encode ~config:t.config m) replies

type stats = {
  hashes_total : int;
  hashes_cached : int;
  full_fallbacks : int;
  rounds : int;
  pushed_files : int;
  chunks_uploaded : int;
  chunks_deduped : int;
  resumed_jobs : int;
}

let stats (t : t) =
  {
    hashes_total = t.counters.hashes_total;
    hashes_cached = t.counters.hashes_cached;
    full_fallbacks = t.counters.full_fallbacks;
    rounds = t.counters.rounds;
    pushed_files = t.pushed_files;
    chunks_uploaded = t.chunks_uploaded;
    chunks_deduped = t.chunks_deduped;
    resumed_jobs = t.resumed_jobs;
  }
