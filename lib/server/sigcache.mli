(** Server-side signature cache.

    The daemon recomputes nothing per client: the truncated level hashes
    of a file are a pure function of (content fingerprint, block size,
    hash width), so one cached vector serves every session and every
    round that visits that level.  Entries are evicted LRU once
    [max_entries] files-at-a-level are resident.

    The cache can outlive the process: {!set_persist} registers a save
    callback fired on every computed (missed) vector, and {!seed}
    re-inserts previously persisted vectors at startup, marked {e warm}.
    A hit on a warm entry is work the restarted daemon did not redo —
    {!warm_hit_rate} measures exactly that.

    Correctness note: every block {!Fsync_core.Block_tree} exposes at
    nominal size [s] starts at a multiple of [s] with length
    [min s (file_len - off)], so the full level vector indexed by
    [off / s] covers every active block at that level — client state
    never leaks into the cache key. *)

type t

val create : ?max_entries:int -> ?scope:Fsync_obs.Scope.t -> unit -> t
(** [max_entries] defaults to 1024 (level vectors, not bytes). *)

type persist = {
  save : fp:Fsync_hash.Fingerprint.t -> size:int -> bits:int -> int array
         -> unit;
}
(** Persistence hooks, deliberately free of any storage type: the store
    layer adapts itself to this record, not the other way round. *)

val set_persist : t -> persist -> unit
(** From now on, every vector computed on a miss is also handed to
    [save].  Seeded (warm) entries are not re-saved. *)

val seed :
  t -> fp:Fsync_hash.Fingerprint.t -> size:int -> bits:int -> int array
  -> unit
(** Insert a previously persisted vector as a warm entry.  Silently
    ignored once the cache is full or if the key is already resident;
    does not count as a lookup. *)

val compute : string -> size:int -> bits:int -> int array
(** The uncached level vector: one truncated poly-hash per size-aligned
    block of the content, short tail included.  Exposed for tests. *)

val find_or_compute :
  t -> fp:Fsync_hash.Fingerprint.t -> size:int -> bits:int -> string
  -> int array * bool
(** Returns the level vector and whether it was served from cache.
    Inserts on miss, evicting the least-recently-used entry if full. *)

type stats = {
  hits : int;
  misses : int;
  lookups : int;  (** [hits + misses]: every {!find_or_compute} call *)
  entries : int;
  evictions : int;
  warmed : int;  (** entries inserted via {!seed} *)
  warm_hits : int;  (** hits served by a seeded entry *)
}

val stats : t -> stats

val hit_rate : t -> float
(** Hits over lookups.  Defined as [0.0] when [lookups = 0] — an
    untouched cache has no hit rate, and reporting it as zero (rather
    than 1.0 or NaN) keeps thresholds like "warm rate ≥ 0.9" honest. *)

val warm_hit_rate : t -> float
(** Warm hits over lookups; [0.0] when [lookups = 0] (same convention
    as {!hit_rate}). *)
