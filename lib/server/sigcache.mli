(** Server-side signature cache.

    The daemon recomputes nothing per client: the truncated level hashes
    of a file are a pure function of (content fingerprint, block size,
    hash width), so one cached vector serves every session and every
    round that visits that level.  Entries are evicted LRU once
    [max_entries] files-at-a-level are resident.

    Correctness note: every block {!Fsync_core.Block_tree} exposes at
    nominal size [s] starts at a multiple of [s] with length
    [min s (file_len - off)], so the full level vector indexed by
    [off / s] covers every active block at that level — client state
    never leaks into the cache key. *)

type t

val create : ?max_entries:int -> ?scope:Fsync_obs.Scope.t -> unit -> t
(** [max_entries] defaults to 1024 (level vectors, not bytes). *)

val compute : string -> size:int -> bits:int -> int array
(** The uncached level vector: one truncated poly-hash per size-aligned
    block of the content, short tail included.  Exposed for tests. *)

val find_or_compute :
  t -> fp:Fsync_hash.Fingerprint.t -> size:int -> bits:int -> string
  -> int array * bool
(** Returns the level vector and whether it was served from cache.
    Inserts on miss, evicting the least-recently-used entry if full. *)

type stats = { hits : int; misses : int; entries : int; evictions : int }

val stats : t -> stats

val hit_rate : t -> float
(** Hits over lookups, 0.0 when untouched. *)
