(** Blocking TCP pull client with bounded retry.

    Connects to a {!Daemon}, wraps the socket in
    {!Fsync_net.Fd_transport} (so [--faults] schedules run on a real
    connection exactly as on the in-memory channel) and drives a
    {!Puller} to completion.  Any typed error — disconnect, corrupted
    frame, idle timeout — burns one attempt; each attempt reseeds the
    fault schedule so deterministic faults cannot pin the same frame
    forever.

    Attempts are separated by {!Backoff} delays (jittered exponential,
    or the server's own [retry-after] on {!Fsync_core.Error.Busy}), and
    the {!Puller.resume_token} of a failed attempt carries completed
    files across, so a resumed pull re-transfers only the remainder. *)

type outcome = {
  files : (string * string) list;
  stats : Puller.stats;
  c2s_bytes : int;
  s2c_bytes : int;
  attempts : int; (** attempts consumed, [>= 1] *)
  backoff_s : float; (** total inter-attempt backoff slept *)
}

val run :
  ?attempts:int ->
  ?fault:Fsync_net.Fault.spec ->
  ?seed:int ->
  ?idle_timeout_s:float ->
  ?scope:Fsync_obs.Scope.t ->
  ?trace_id:Fsync_obs.Trace_id.t ->
  host:string ->
  port:int ->
  (string * string) list ->
  outcome
(** Pull against the replica's old [(path, content)] files.  Defaults:
    3 attempts, no faults, 30 s idle timeout, numeric [host].  Raises
    the last failure when every attempt is spent.

    [trace_id] (minted fresh when omitted) is announced in every
    attempt's [Hello] and stamped — with role ["client"] — onto
    [scope]'s registry, which also receives the client-side phase
    spans; export it with [--trace-json] and join it against the
    daemon's stream via [fsync trace report]. *)
