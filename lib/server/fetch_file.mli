(** The receiving side of one file's transfer (the paper's recursive
    multiround protocol, client half).

    Extracted from {!Puller} so the swarm gossip exchange
    ({!Fsync_swarm.Gossip}) fetches files through the very same
    matching and reconstruction code — level-hash window index, offset
    prediction, tail probes, verified rebuild — as the plain client. *)

type counters = {
  mutable rounds : int;
  mutable matched_bytes : int;
  mutable literal_bytes : int;
}
(** Shared across the files of a session; the caller owns the record. *)

val fresh_counters : unit -> counters

type t

val create :
  who:string ->
  config:Msg.sync_config ->
  counters:counters ->
  path:string ->
  new_len:int ->
  fp:Fsync_hash.Fingerprint.t ->
  old:string ->
  t
(** State for one announced [File_begin].  [old] is the local copy the
    level hashes are matched against ([""] when none). *)

val path : t -> string

val expect_tail : t -> bool
(** True once the split floor was reached: the next message must be the
    [Tail], not another [Hashes] round. *)

val on_hashes : t -> int array -> Msg.t list
(** Match one round of level hashes; the [Matched] bitmap reply. *)

val on_tail :
  t -> string -> [ `Verified of string | `Mismatch ] * Msg.t list
(** Rebuild from matches plus the deflated literals and verify the
    whole-file fingerprint.  [`Verified content] comes with
    [File_ack true]; [`Mismatch] with [File_ack false] (the server
    answers with a verified [Full]). *)
