module Fp = Fsync_hash.Fingerprint
module Block_tree = Fsync_core.Block_tree
module Candidates = Fsync_core.Candidates
module Poly_hash = Fsync_hash.Poly_hash
module Error = Fsync_core.Error
module Deflate = Fsync_compress.Deflate

type counters = {
  mutable rounds : int;
  mutable matched_bytes : int;
  mutable literal_bytes : int;
}

let fresh_counters () = { rounds = 0; matched_bytes = 0; literal_bytes = 0 }

type t = {
  who : string;
  config : Msg.sync_config;
  counters : counters;
  path : string;
  new_len : int;
  fp : Fp.t;
  old : string;
  tree : Block_tree.t;
  mutable matches : (int * int * int) list; (* (new_off, len, old_pos), rev *)
  mutable delta : int; (* last observed old_pos - new_off: offset prediction *)
  mutable index : (int * Candidates.t) option; (* per-level window index *)
  mutable expect_tail : bool;
}

let create ~who ~config ~counters ~path ~new_len ~fp ~old =
  {
    who;
    config;
    counters;
    path;
    new_len;
    fp;
    old;
    tree = Block_tree.create ~file_len:new_len ~start_block:config.start_block;
    matches = [];
    delta = 0;
    index = None;
    expect_tail = false;
  }

let path t = t.path
let expect_tail t = t.expect_tail

(* ---- per-round matching ---- *)

let level_index t ~size ~bits =
  if String.length t.old < size then None
  else
    match t.index with
    | Some (s, idx) when Int.equal s size -> Some idx
    | _ ->
        let idx = Candidates.build t.old ~window:size ~bits in
        t.index <- Some (size, idx);
        Some idx

(* A block shorter than the round's window (the file tail) cannot use
   the rolling index; probe the predicted and the same-offset positions
   directly. *)
let match_short t (b : Block_tree.block) ~bits h =
  let try_pos pos =
    pos >= 0
    && pos + b.len <= String.length t.old
    && Int.equal
         (Poly_hash.truncate (Poly_hash.hash_sub t.old ~pos ~len:b.len) ~bits)
         h
  in
  let predicted = b.off + t.delta in
  if try_pos predicted then Some predicted
  else if (not (Int.equal predicted b.off)) && try_pos b.off then Some b.off
  else None

let match_block t idx ~size ~bits (b : Block_tree.block) h =
  if Int.equal b.len size then
    match idx with
    | None -> None
    | Some idx -> (
        match
          Candidates.select ~cap:1
            ~predicted:(Some (b.off + t.delta))
            (Candidates.lookup idx h)
        with
        | pos :: _ -> Some pos
        | [] -> None)
  else match_short t b ~bits h

let on_hashes t hs =
  let active = Block_tree.active_blocks t.tree in
  if not (Int.equal (Array.length hs) (List.length active)) then
    Error.malformed "%s: %d hashes for %d active blocks" t.who
      (Array.length hs) (List.length active);
  let size = Block_tree.current_size t.tree in
  let bits = t.config.hash_bits in
  let idx = level_index t ~size ~bits in
  let bits_out =
    List.mapi
      (fun i (b : Block_tree.block) ->
        match match_block t idx ~size ~bits b hs.(i) with
        | Some pos ->
            b.confirmed <- true;
            t.matches <- (b.off, b.len, pos) :: t.matches;
            t.delta <- pos - b.off;
            true
        | None -> false)
      active
  in
  t.counters.rounds <- t.counters.rounds + 1;
  (* Mirror the server's decision so the next message is unambiguous. *)
  (match Msg.decide_next ~config:t.config t.tree with
  | `Split -> Block_tree.split t.tree
  | `Tail -> t.expect_tail <- true);
  [ Msg.Matched (Msg.encode_bitmap bits_out) ]

(* ---- reconstruction ---- *)

let on_tail t z =
  let literals = Deflate.decompress z in
  let remaining = Block_tree.active_blocks t.tree in
  let needed =
    List.fold_left (fun acc (b : Block_tree.block) -> acc + b.len) 0 remaining
  in
  if not (Int.equal (String.length literals) needed) then
    Error.malformed "%s: %d literal bytes for %d unconfirmed" t.who
      (String.length literals) needed;
  let matched =
    List.fold_left (fun acc (_, len, _) -> acc + len) 0 t.matches
  in
  if not (Int.equal (matched + needed) t.new_len) then
    Error.malformed "%s: %d matched + %d literal <> %d file bytes" t.who
      matched needed t.new_len;
  let out = Bytes.create t.new_len in
  List.iter
    (fun (off, len, pos) -> Bytes.blit_string t.old pos out off len)
    t.matches;
  let cursor = ref 0 in
  List.iter
    (fun (b : Block_tree.block) ->
      Bytes.blit_string literals !cursor out b.off b.len;
      cursor := !cursor + b.len)
    remaining;
  let content = Bytes.to_string out in
  t.counters.matched_bytes <- t.counters.matched_bytes + matched;
  t.counters.literal_bytes <- t.counters.literal_bytes + needed;
  if Fp.equal (Fp.of_string content) t.fp then
    (`Verified content, [ Msg.File_ack true ])
  else
    (* Weak-hash collision led us astray; ask for the verified full
       copy instead of guessing further. *)
    (`Mismatch, [ Msg.File_ack false ])
