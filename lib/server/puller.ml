module Fp = Fsync_hash.Fingerprint
module Block_tree = Fsync_core.Block_tree
module Candidates = Fsync_core.Candidates
module Poly_hash = Fsync_hash.Poly_hash
module Error = Fsync_core.Error
module Deflate = Fsync_compress.Deflate
module Meta_wire = Fsync_collection.Meta_wire
module Scope = Fsync_obs.Scope
module Trace_id = Fsync_obs.Trace_id

type file_progress = {
  path : string;
  new_len : int;
  fp : Fp.t;
  old : string;
  tree : Block_tree.t;
  mutable matches : (int * int * int) list; (* (new_off, len, old_pos), rev *)
  mutable delta : int; (* last observed old_pos - new_off: offset prediction *)
  mutable index : (int * Candidates.t) option; (* per-level window index *)
  mutable expect_tail : bool;
}

type phase =
  | Expect_welcome
  | Expect_verdict
  | Expect_file
  | In_file of file_progress
  | Done

type resume_token = {
  rt_root : Fp.t; (* the collection root the crashed session synced toward *)
  rt_announced : string list; (* announce paths, announce order *)
  rt_new_paths : string list; (* verdict new paths, path-sorted *)
  rt_completed : (string * string) list; (* verified (path, content) *)
}

type t = {
  files : (string * string) list; (* the old replica, announce order *)
  resume : resume_token option;
  scope : Scope.t; (* the client's trace registry, if any *)
  trace_id : Trace_id.t option; (* carried in Hello; minted by Pull.run *)
  mutable span_session : int; (* root "session" span; -1 = not open *)
  mutable span_phase : (string * int) option;
  mutable config : Msg.sync_config;
  mutable phase : phase;
  mutable unchanged : (string * string) list;
  mutable received : (string * string) list; (* rev *)
  mutable server_root : Fp.t option; (* from Welcome *)
  mutable new_paths : string list option; (* from Verdict *)
  mutable resumed_files : int; (* jobs skipped via the resume token *)
  mutable rounds : int;
  mutable matched_bytes : int;
  mutable literal_bytes : int;
}

let create ?(scope = Scope.disabled) ?trace_id ?resume files =
  {
    files;
    resume;
    scope;
    trace_id;
    span_session = -1;
    span_phase = None;
    config = Msg.default_sync_config;
    phase = Expect_welcome;
    unchanged = [];
    received = [];
    server_root = None;
    new_paths = None;
    resumed_files = 0;
    rounds = 0;
    matched_bytes = 0;
    literal_bytes = 0;
  }

let enc t m = Msg.encode ~config:t.config m

(* ---- client-side phase spans, the mirror of Session's (see
   session.mli): open across the waits so they tile the session. ---- *)

let close_phase t =
  (match t.span_phase with
  | Some (_, id) -> Scope.leave t.scope id
  | None -> ());
  t.span_phase <- None

let set_phase t name =
  match t.span_phase with
  | Some (cur, _) when String.equal cur name -> ()
  | _ ->
      close_phase t;
      t.span_phase <- Some (name, Scope.enter t.scope name)

let end_phases t =
  close_phase t;
  if t.span_session >= 0 then begin
    Scope.leave t.scope t.span_session;
    t.span_session <- -1
  end

let sync_phase t =
  match t.phase with
  | Expect_welcome | Expect_verdict -> set_phase t "phase:metadata"
  | Expect_file ->
      (* Between files: stay in whatever phase got us here (metadata
         right after the verdict, literals after a tail/full). *)
      if Option.is_none t.span_phase then set_phase t "phase:metadata"
  | In_file p ->
      set_phase t
        (if p.expect_tail then "phase:literals" else "phase:hash_rounds")
  | Done -> end_phases t

let start t =
  t.span_session <- Scope.enter t.scope "session";
  sync_phase t;
  [
    enc t
      (Msg.Hello
         {
           version = Msg.version;
           trace = Option.map Trace_id.to_raw t.trace_id;
         });
  ]

let finished t = match t.phase with Done -> true | _ -> false

let result t =
  List.sort
    (fun (a, _) (b, _) -> String.compare a b)
    (t.unchanged @ List.rev t.received)

let find_old t path =
  match List.find_opt (fun (p, _) -> String.equal p path) t.files with
  | Some (_, content) -> content
  | None -> ""

(* Replace-by-path: if a server ignores our resume bitmap and re-sends a
   completed file, the fresh copy supersedes the primed one instead of
   duplicating the path (which would poison the Bye root check). *)
let add_received t path content =
  t.received <-
    (path, content)
    :: List.filter (fun (p, _) -> not (String.equal p path)) t.received

(* ---- per-round matching ---- *)

let level_index p ~size ~bits =
  if String.length p.old < size then None
  else
    match p.index with
    | Some (s, idx) when Int.equal s size -> Some idx
    | _ ->
        let idx = Candidates.build p.old ~window:size ~bits in
        p.index <- Some (size, idx);
        Some idx

(* A block shorter than the round's window (the file tail) cannot use
   the rolling index; probe the predicted and the same-offset positions
   directly. *)
let match_short p (b : Block_tree.block) ~bits h =
  let try_pos pos =
    pos >= 0
    && pos + b.len <= String.length p.old
    && Int.equal
         (Poly_hash.truncate
            (Poly_hash.hash_sub p.old ~pos ~len:b.len)
            ~bits)
         h
  in
  let predicted = b.off + p.delta in
  if try_pos predicted then Some predicted
  else if (not (Int.equal predicted b.off)) && try_pos b.off then Some b.off
  else None

let match_block p idx ~size ~bits (b : Block_tree.block) h =
  if Int.equal b.len size then
    match idx with
    | None -> None
    | Some idx -> (
        match
          Candidates.select ~cap:1
            ~predicted:(Some (b.off + p.delta))
            (Candidates.lookup idx h)
        with
        | pos :: _ -> Some pos
        | [] -> None)
  else match_short p b ~bits h

let on_hashes t p hs =
  let active = Block_tree.active_blocks p.tree in
  if not (Int.equal (Array.length hs) (List.length active)) then
    Error.malformed "Puller: %d hashes for %d active blocks"
      (Array.length hs) (List.length active);
  let size = Block_tree.current_size p.tree in
  let bits = t.config.hash_bits in
  let idx = level_index p ~size ~bits in
  let bits_out =
    List.mapi
      (fun i (b : Block_tree.block) ->
        match match_block p idx ~size ~bits b hs.(i) with
        | Some pos ->
            b.confirmed <- true;
            p.matches <- (b.off, b.len, pos) :: p.matches;
            p.delta <- pos - b.off;
            true
        | None -> false)
      active
  in
  t.rounds <- t.rounds + 1;
  (* Mirror the server's decision so the next message is unambiguous. *)
  (match Msg.decide_next ~config:t.config p.tree with
  | `Split -> Block_tree.split p.tree
  | `Tail -> p.expect_tail <- true);
  [ Msg.Matched (Msg.encode_bitmap bits_out) ]

(* ---- reconstruction ---- *)

let on_tail t p z =
  let literals = Deflate.decompress z in
  let remaining = Block_tree.active_blocks p.tree in
  let needed =
    List.fold_left (fun acc (b : Block_tree.block) -> acc + b.len) 0 remaining
  in
  if not (Int.equal (String.length literals) needed) then
    Error.malformed "Puller: %d literal bytes for %d unconfirmed"
      (String.length literals) needed;
  let matched =
    List.fold_left (fun acc (_, len, _) -> acc + len) 0 p.matches
  in
  if not (Int.equal (matched + needed) p.new_len) then
    Error.malformed "Puller: %d matched + %d literal <> %d file bytes" matched
      needed p.new_len;
  let out = Bytes.create p.new_len in
  List.iter
    (fun (off, len, pos) -> Bytes.blit_string p.old pos out off len)
    p.matches;
  let cursor = ref 0 in
  List.iter
    (fun (b : Block_tree.block) ->
      Bytes.blit_string literals !cursor out b.off b.len;
      cursor := !cursor + b.len)
    remaining;
  let content = Bytes.to_string out in
  t.matched_bytes <- t.matched_bytes + matched;
  t.literal_bytes <- t.literal_bytes + needed;
  t.phase <- Expect_file;
  if Fp.equal (Fp.of_string content) p.fp then begin
    add_received t p.path content;
    [ Msg.File_ack true ]
  end
  else
    (* Weak-hash collision led us astray; ask for the verified full
       copy instead of guessing further. *)
    [ Msg.File_ack false ]

let on_bye t root =
  let final = t.unchanged @ List.rev t.received in
  let actual = Meta_wire.collection_root final in
  if not (Fp.equal actual root) then
    Error.fail
      (Error.Verification_failed
         (Printf.sprintf "Puller: collection root %s, server announced %s"
            (Fp.to_hex actual) (Fp.to_hex root)));
  t.phase <- Done;
  []

(* The resume token only applies when the server still serves the same
   collection and this attempt announces the same replica: both index
   spaces (announce order, sorted new paths) are then identical to the
   crashed session's, so the bitmap means the same jobs on both ends. *)
let usable_resume t ~root =
  match t.resume with
  | Some r
    when Fp.equal r.rt_root root
         && List.equal String.equal r.rt_announced (List.map fst t.files) ->
      Some r
  | Some _ | None -> None

let resume_replies t ~root =
  match usable_resume t ~root with
  | None -> []
  | Some r ->
      let have p =
        List.exists (fun (q, _) -> String.equal q p) r.rt_completed
      in
      t.received <- List.rev r.rt_completed;
      t.resumed_files <- List.length r.rt_completed;
      let bits =
        List.map (fun (p, _) -> have p) t.files
        @ List.map have r.rt_new_paths
      in
      [ Msg.Resume { root; bitmap = Msg.encode_bitmap bits } ]

let on_message t raw =
  let msg = Msg.decode ~config:t.config raw in
  let dispatch () =
    match (t.phase, msg) with
    | Expect_welcome, Msg.Welcome { version; config; root; _ } ->
        if not (Msg.version_ok version) then
          Error.malformed "Puller: protocol version %d outside %d..%d"
            version Msg.min_version Msg.version;
        t.config <- config;
        t.server_root <- Some root;
        t.phase <- Expect_verdict;
        resume_replies t ~root
        @ [
            Msg.Announce
              (Meta_wire.encode_announce
                 (List.map (fun (p, c) -> (p, Fp.of_string c)) t.files));
          ]
    | Expect_welcome, Msg.Busy { retry_after_ms } ->
        Error.fail
          (Error.Busy { retry_after_s = float_of_int retry_after_ms /. 1000. })
    | Expect_verdict, Msg.Verdict body ->
        let bits, new_paths =
          Meta_wire.decode_verdict ~n_announced:(List.length t.files) body
        in
        t.unchanged <-
          List.filteri (fun i _ -> bits.(i)) t.files;
        t.new_paths <- Some new_paths;
        t.phase <- Expect_file;
        []
    | Expect_file, Msg.File_begin { path; new_len; fp } ->
        let old = find_old t path in
        t.phase <-
          In_file
            {
              path;
              new_len;
              fp;
              old;
              tree =
                Block_tree.create ~file_len:new_len
                  ~start_block:t.config.start_block;
              matches = [];
              delta = 0;
              index = None;
              expect_tail = false;
            };
        []
    | In_file p, Msg.Hashes hs when not p.expect_tail -> on_hashes t p hs
    | In_file p, Msg.Tail z when p.expect_tail -> on_tail t p z
    | Expect_file, Msg.Full body ->
        set_phase t "phase:literals";
        let path, content = Meta_wire.decode_file_msg ~old_content:"" body in
        add_received t path content;
        t.literal_bytes <- t.literal_bytes + String.length content;
        [ Msg.File_ack true ]
    | Expect_file, Msg.Bye { root } -> on_bye t root
    | _, Msg.Error_msg m ->
        Error.fail
          (Error.Disconnected (Printf.sprintf "Puller: server error: %s" m))
    | _, other -> Error.malformed "Puller: unexpected %s" (Msg.label other)
  in
  let replies =
    try
      let replies = dispatch () in
      sync_phase t;
      replies
    with e ->
      end_phases t;
      raise e
  in
  List.map (enc t) replies

(* Snapshot the session's progress for a future attempt.  Only useful
   once the verdict arrived (the bitmap index space is known) and some
   file actually completed. *)
let resume_token t =
  match (t.server_root, t.new_paths, t.received) with
  | Some root, Some new_paths, (_ :: _ as received) ->
      Some
        {
          rt_root = root;
          rt_announced = List.map fst t.files;
          rt_new_paths = new_paths;
          rt_completed = List.rev received;
        }
  | _ -> ( match t.resume with Some _ as r -> r | None -> None)

type stats = {
  rounds : int;
  matched_bytes : int;
  literal_bytes : int;
  resumed_files : int;
}

let stats (t : t) =
  {
    rounds = t.rounds;
    matched_bytes = t.matched_bytes;
    literal_bytes = t.literal_bytes;
    resumed_files = t.resumed_files;
  }
