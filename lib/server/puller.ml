module Fp = Fsync_hash.Fingerprint
module Error = Fsync_core.Error
module Meta_wire = Fsync_collection.Meta_wire
module Scope = Fsync_obs.Scope
module Trace_id = Fsync_obs.Trace_id

type phase =
  | Expect_welcome
  | Expect_verdict
  | Expect_file
  | In_file of Fetch_file.t
  | Done

type resume_token = {
  rt_root : Fp.t; (* the collection root the crashed session synced toward *)
  rt_announced : string list; (* announce paths, announce order *)
  rt_new_paths : string list; (* verdict new paths, path-sorted *)
  rt_completed : (string * string) list; (* verified (path, content) *)
}

type t = {
  files : (string * string) list; (* the old replica, announce order *)
  resume : resume_token option;
  scope : Scope.t; (* the client's trace registry, if any *)
  trace_id : Trace_id.t option; (* carried in Hello; minted by Pull.run *)
  mutable span_session : int; (* root "session" span; -1 = not open *)
  mutable span_phase : (string * int) option;
  mutable config : Msg.sync_config;
  mutable phase : phase;
  mutable unchanged : (string * string) list;
  mutable received : (string * string) list; (* rev *)
  mutable server_root : Fp.t option; (* from Welcome *)
  mutable new_paths : string list option; (* from Verdict *)
  mutable resumed_files : int; (* jobs skipped via the resume token *)
  counters : Fetch_file.counters;
}

let create ?(scope = Scope.disabled) ?trace_id ?resume files =
  {
    files;
    resume;
    scope;
    trace_id;
    span_session = -1;
    span_phase = None;
    config = Msg.default_sync_config;
    phase = Expect_welcome;
    unchanged = [];
    received = [];
    server_root = None;
    new_paths = None;
    resumed_files = 0;
    counters = Fetch_file.fresh_counters ();
  }

let enc t m = Msg.encode ~config:t.config m

(* ---- client-side phase spans, the mirror of Session's (see
   session.mli): open across the waits so they tile the session. ---- *)

let close_phase t =
  (match t.span_phase with
  | Some (_, id) -> Scope.leave t.scope id
  | None -> ());
  t.span_phase <- None

let set_phase t name =
  match t.span_phase with
  | Some (cur, _) when String.equal cur name -> ()
  | _ ->
      close_phase t;
      t.span_phase <- Some (name, Scope.enter t.scope name)

let end_phases t =
  close_phase t;
  if t.span_session >= 0 then begin
    Scope.leave t.scope t.span_session;
    t.span_session <- -1
  end

let sync_phase t =
  match t.phase with
  | Expect_welcome | Expect_verdict -> set_phase t "phase:metadata"
  | Expect_file ->
      (* Between files: stay in whatever phase got us here (metadata
         right after the verdict, literals after a tail/full). *)
      if Option.is_none t.span_phase then set_phase t "phase:metadata"
  | In_file p ->
      set_phase t
        (if Fetch_file.expect_tail p then "phase:literals"
         else "phase:hash_rounds")
  | Done -> end_phases t

let start t =
  t.span_session <- Scope.enter t.scope "session";
  sync_phase t;
  [ enc t (Handshake.hello ?trace:t.trace_id ()) ]

let finished t = match t.phase with Done -> true | _ -> false

let result t =
  List.sort
    (fun (a, _) (b, _) -> String.compare a b)
    (t.unchanged @ List.rev t.received)

let find_old t path =
  match List.find_opt (fun (p, _) -> String.equal p path) t.files with
  | Some (_, content) -> content
  | None -> ""

(* Replace-by-path: if a server ignores our resume bitmap and re-sends a
   completed file, the fresh copy supersedes the primed one instead of
   duplicating the path (which would poison the Bye root check). *)
let add_received t path content =
  t.received <-
    (path, content)
    :: List.filter (fun (p, _) -> not (String.equal p path)) t.received

let on_bye t root =
  let final = t.unchanged @ List.rev t.received in
  let actual = Meta_wire.collection_root final in
  if not (Fp.equal actual root) then
    Error.fail
      (Error.Verification_failed
         (Printf.sprintf "Puller: collection root %s, server announced %s"
            (Fp.to_hex actual) (Fp.to_hex root)));
  t.phase <- Done;
  []

(* The resume token only applies when the server still serves the same
   collection and this attempt announces the same replica: both index
   spaces (announce order, sorted new paths) are then identical to the
   crashed session's, so the bitmap means the same jobs on both ends. *)
let usable_resume t ~root =
  match t.resume with
  | Some r
    when Fp.equal r.rt_root root
         && List.equal String.equal r.rt_announced (List.map fst t.files) ->
      Some r
  | Some _ | None -> None

let resume_replies t ~root =
  match usable_resume t ~root with
  | None -> []
  | Some r ->
      let have p =
        List.exists (fun (q, _) -> String.equal q p) r.rt_completed
      in
      t.received <- List.rev r.rt_completed;
      t.resumed_files <- List.length r.rt_completed;
      let bits =
        List.map (fun (p, _) -> have p) t.files
        @ List.map have r.rt_new_paths
      in
      [ Msg.Resume { root; bitmap = Msg.encode_bitmap bits } ]

let on_message t raw =
  let msg = Msg.decode ~config:t.config raw in
  let dispatch () =
    match (t.phase, msg) with
    | Expect_welcome, Msg.Welcome { version; config; root; _ } ->
        Handshake.check_version ~who:"Puller" version;
        t.config <- config;
        t.server_root <- Some root;
        t.phase <- Expect_verdict;
        resume_replies t ~root
        @ [
            Msg.Announce
              (Meta_wire.encode_announce
                 (List.map (fun (p, c) -> (p, Fp.of_string c)) t.files));
          ]
    | Expect_welcome, Msg.Busy { retry_after_ms } ->
        Handshake.reject_busy ~retry_after_ms
    | Expect_verdict, Msg.Verdict body ->
        let bits, new_paths =
          Meta_wire.decode_verdict ~n_announced:(List.length t.files) body
        in
        t.unchanged <-
          List.filteri (fun i _ -> bits.(i)) t.files;
        t.new_paths <- Some new_paths;
        t.phase <- Expect_file;
        []
    | Expect_file, Msg.File_begin { path; new_len; fp } ->
        t.phase <-
          In_file
            (Fetch_file.create ~who:"Puller" ~config:t.config
               ~counters:t.counters ~path ~new_len ~fp ~old:(find_old t path));
        []
    | In_file p, Msg.Hashes hs when not (Fetch_file.expect_tail p) ->
        Fetch_file.on_hashes p hs
    | In_file p, Msg.Tail z when Fetch_file.expect_tail p ->
        let outcome, replies = Fetch_file.on_tail p z in
        t.phase <- Expect_file;
        (match outcome with
        | `Verified content -> add_received t (Fetch_file.path p) content
        | `Mismatch -> ());
        replies
    | Expect_file, Msg.Full body ->
        set_phase t "phase:literals";
        let path, content = Meta_wire.decode_file_msg ~old_content:"" body in
        add_received t path content;
        t.counters.literal_bytes <-
          t.counters.literal_bytes + String.length content;
        [ Msg.File_ack true ]
    | Expect_file, Msg.Bye { root } -> on_bye t root
    | _, Msg.Error_msg m ->
        Error.fail
          (Error.Disconnected (Printf.sprintf "Puller: server error: %s" m))
    | _, other -> Error.malformed "Puller: unexpected %s" (Msg.label other)
  in
  let replies =
    try
      let replies = dispatch () in
      sync_phase t;
      replies
    with e ->
      end_phases t;
      raise e
  in
  List.map (enc t) replies

(* Snapshot the session's progress for a future attempt.  Only useful
   once the verdict arrived (the bitmap index space is known) and some
   file actually completed. *)
let resume_token t =
  match (t.server_root, t.new_paths, t.received) with
  | Some root, Some new_paths, (_ :: _ as received) ->
      Some
        {
          rt_root = root;
          rt_announced = List.map fst t.files;
          rt_new_paths = new_paths;
          rt_completed = List.rev received;
        }
  | _ -> ( match t.resume with Some _ as r -> r | None -> None)

type stats = {
  rounds : int;
  matched_bytes : int;
  literal_bytes : int;
  resumed_files : int;
}

let stats (t : t) =
  {
    rounds = t.counters.rounds;
    matched_bytes = t.counters.matched_bytes;
    literal_bytes = t.counters.literal_bytes;
    resumed_files = t.resumed_files;
  }
