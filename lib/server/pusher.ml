module Fp = Fsync_hash.Fingerprint
module Error = Fsync_core.Error
module Deflate = Fsync_compress.Deflate
module Meta_wire = Fsync_collection.Meta_wire
module Chunker = Fsync_cdc.Chunker
module Scope = Fsync_obs.Scope
module Trace_id = Fsync_obs.Trace_id

type job = {
  path : string;
  content : string;
  fp : Fp.t;
  chunks : (Fp.t * Chunker.chunk) list;
}

type phase =
  | Expect_welcome
  | Expect_need of job
  | Expect_ack of job
  | Expect_bye
  | Done

type t = {
  scope : Scope.t; (* the client's trace registry, if any *)
  trace_id : Trace_id.t option; (* carried in Hello; minted by Push.run *)
  mutable span_session : int; (* root "session" span; -1 = not open *)
  mutable span_phase : (string * int) option;
  mutable config : Msg.sync_config;
  mutable phase : phase;
  mutable queue : job list;
  root : Fp.t;
  resumed_files : int;
  mutable acked : string list; (* paths the server ack'd, cumulative, rev *)
  mutable files_pushed : int;
  mutable chunks_total : int;
  mutable chunks_sent : int;
  mutable bytes_sent : int;
  mutable bytes_deduped : int;
}

(* [skip]: paths a previous attempt already pushed and saw ack'd — they
   are left out of this session entirely, so the server's Bye root
   covers exactly the files pushed now (the resume discipline of
   DESIGN.md §12). *)
let create ?(scope = Scope.disabled) ?trace_id ?params ?(skip = []) files =
  let skipped p = List.exists (String.equal p) skip in
  let remaining = List.filter (fun (p, _) -> not (skipped p)) files in
  let jobs =
    List.map
      (fun (path, content) ->
        {
          path;
          content;
          fp = Fp.of_string content;
          chunks =
            List.map
              (fun c -> (Fp.of_string (Chunker.chunk_content content c), c))
              (Chunker.chunks ?params content);
        })
      remaining
  in
  {
    scope;
    trace_id;
    span_session = -1;
    span_phase = None;
    config = Msg.default_sync_config;
    phase = Expect_welcome;
    queue = jobs;
    root = Meta_wire.collection_root remaining;
    resumed_files = List.length files - List.length remaining;
    acked = List.rev skip;
    files_pushed = 0;
    chunks_total = 0;
    chunks_sent = 0;
    bytes_sent = 0;
    bytes_deduped = 0;
  }

let completed_paths t = List.rev t.acked

let enc t m = Msg.encode ~config:t.config m

(* ---- client-side phase spans (see session.mli): [phase:metadata]
   over the hello/welcome opening, then [phase:push] until Bye. ---- *)

let close_phase t =
  (match t.span_phase with
  | Some (_, id) -> Scope.leave t.scope id
  | None -> ());
  t.span_phase <- None

let set_phase t name =
  match t.span_phase with
  | Some (cur, _) when String.equal cur name -> ()
  | _ ->
      close_phase t;
      t.span_phase <- Some (name, Scope.enter t.scope name)

let end_phases t =
  close_phase t;
  if t.span_session >= 0 then begin
    Scope.leave t.scope t.span_session;
    t.span_session <- -1
  end

let sync_phase t =
  match t.phase with
  | Expect_welcome -> set_phase t "phase:metadata"
  | Expect_need _ | Expect_ack _ | Expect_bye -> set_phase t "phase:push"
  | Done -> end_phases t

let start t =
  t.span_session <- Scope.enter t.scope "session";
  sync_phase t;
  [ enc t (Handshake.hello ?trace:t.trace_id ()) ]

let finished t = match t.phase with Done -> true | _ -> false

let advance t =
  match t.queue with
  | [] ->
      t.phase <- Expect_bye;
      [ Msg.Push_done ]
  | job :: rest ->
      t.queue <- rest;
      t.chunks_total <- t.chunks_total + List.length job.chunks;
      t.phase <- Expect_need job;
      [
        Msg.Push_begin
          {
            path = job.path;
            file_len = String.length job.content;
            fp = job.fp;
            manifest =
              List.map (fun (cfp, (c : Chunker.chunk)) -> (cfp, c.len)) job.chunks;
          };
      ]

(* Answer a residency bitmap (initial or all-ones retry) with exactly
   the requested chunks, manifest order, deflated as one payload. *)
let on_need t job bitmap =
  let flags = Msg.decode_bitmap ~count:(List.length job.chunks) bitmap in
  let buf = Buffer.create 4096 in
  List.iteri
    (fun i (_, (c : Chunker.chunk)) ->
      if flags.(i) then begin
        Buffer.add_substring buf job.content c.off c.len;
        t.chunks_sent <- t.chunks_sent + 1;
        t.bytes_sent <- t.bytes_sent + c.len
      end
      else t.bytes_deduped <- t.bytes_deduped + c.len)
    job.chunks;
  t.phase <- Expect_ack job;
  [ Msg.Chunk_data (Deflate.compress (Buffer.contents buf)) ]

let on_message t raw =
  let msg = Msg.decode ~config:t.config raw in
  let dispatch () =
    match (t.phase, msg) with
    | Expect_welcome, Msg.Welcome { version; config; _ } ->
        Handshake.check_version ~who:"Pusher" version;
        t.config <- config;
        advance t
    | Expect_welcome, Msg.Busy { retry_after_ms } ->
        Handshake.reject_busy ~retry_after_ms
    | Expect_need job, Msg.Chunk_need bitmap -> on_need t job bitmap
    (* A Chunk_need after our data is the server's one store-failure
       retry: re-send per the new (all-ones) bitmap. *)
    | Expect_ack job, Msg.Chunk_need bitmap -> on_need t job bitmap
    | Expect_ack job, Msg.File_ack true ->
        t.files_pushed <- t.files_pushed + 1;
        t.acked <- job.path :: t.acked;
        advance t
    | Expect_ack job, Msg.File_ack false ->
        Error.fail
          (Error.Verification_failed
             (Printf.sprintf "Pusher: server rejected verified push of %s"
                job.path))
    | Expect_bye, Msg.Bye { root } ->
        if not (Fp.equal root t.root) then
          Error.fail
            (Error.Verification_failed
               (Printf.sprintf "Pusher: pushed root %s, server recorded %s"
                  (Fp.to_hex t.root) (Fp.to_hex root)));
        t.phase <- Done;
        []
    | _, Msg.Error_msg m ->
        Error.fail
          (Error.Disconnected (Printf.sprintf "Pusher: server error: %s" m))
    | _, other -> Error.malformed "Pusher: unexpected %s" (Msg.label other)
  in
  let replies =
    try
      let replies = dispatch () in
      sync_phase t;
      replies
    with e ->
      end_phases t;
      raise e
  in
  List.map (enc t) replies

type stats = {
  files_pushed : int;
  chunks_total : int;
  chunks_sent : int;
  bytes_sent : int;
  bytes_deduped : int;
  resumed_files : int;
}

let stats (t : t) =
  {
    files_pushed = t.files_pushed;
    chunks_total = t.chunks_total;
    chunks_sent = t.chunks_sent;
    bytes_sent = t.bytes_sent;
    bytes_deduped = t.bytes_deduped;
    resumed_files = t.resumed_files;
  }
