(* One-shot blocking client for the daemon's admin plane: connect, send
   one framed request ("metrics" or "status"), read one framed reply,
   close.  Shares the 4-byte framing with the data plane via
   {!Fsync_net.Fd_transport}, so there is exactly one wire format to
   harden. *)

module Channel = Fsync_net.Channel
module Fd_transport = Fsync_net.Fd_transport
module Error = Fsync_core.Error
module Monotonic = Fsync_obs.Monotonic

let connect ~host ~port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  match
    Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port))
  with
  | () -> fd
  | exception e ->
      (match Unix.close fd with
      | () -> ()
      | exception Unix.Unix_error _ -> ());
      raise e

let request ?(timeout_s = 5.0) ~host ~port body =
  let fd = connect ~host ~port in
  let tr = Fd_transport.of_fd fd in
  let ch = Fd_transport.channel tr in
  let go () =
    Channel.send ch ~label:"admin" Channel.Client_to_server body;
    let deadline = Monotonic.now () +. timeout_s in
    let rec recv () =
      match Channel.recv_opt ch Channel.Server_to_client with
      | Some reply -> reply
      | None ->
          if Monotonic.now () > deadline then
            Error.fail
              (Error.Channel_empty
                 (Printf.sprintf "Admin: no reply to %S within %.1f s" body
                    timeout_s));
          ignore
            (Fd_transport.wait_readable tr Channel.Server_to_client
               ~timeout_s:0.2);
          recv ()
    in
    recv ()
  in
  match go () with
  | reply ->
      Fd_transport.close tr;
      reply
  | exception e ->
      Fd_transport.close tr;
      raise e

let metrics ?timeout_s ~host ~port () =
  request ?timeout_s ~host ~port "metrics"

let status ?timeout_s ~host ~port () =
  match Fsync_obs.Json.parse (request ?timeout_s ~host ~port "status") with
  | Ok doc -> doc
  | Error e ->
      Error.malformed "Admin: status reply is not valid JSON: %s" e
