module Error = Fsync_core.Error

let header_bytes = Fsync_net.Fd_transport.header_bytes

let max_frame = Fsync_net.Fd_transport.max_frame

type t = {
  fd : Unix.file_descr;
  mutable inbuf : string;         (* raw bytes read, not yet framed out *)
  outbox : Bytes.t Queue.t;       (* framed messages awaiting the socket *)
  mutable out_head_pos : int;     (* bytes of the queue head already sent *)
  mutable out_bytes : int;        (* total unsent bytes in the outbox *)
  max_outbox : int;
  mutable closed : bool;
  mutable bytes_in : int;         (* payload bytes received *)
  mutable bytes_out : int;        (* payload bytes queued for sending *)
}

let create ?(max_outbox = 4 * 1024 * 1024) fd =
  Unix.set_nonblock fd;
  {
    fd;
    inbuf = "";
    outbox = Queue.create ();
    out_head_pos = 0;
    out_bytes = 0;
    max_outbox;
    closed = false;
    bytes_in = 0;
    bytes_out = 0;
  }

let fd t = t.fd

let closed t = t.closed

let bytes_in t = t.bytes_in

let bytes_out t = t.bytes_out

let pending_out t = t.out_bytes

let wants_write t = (not t.closed) && t.out_bytes > 0

(* Backpressure: while more than [max_outbox] bytes sit unsent, the
   event loop stops reading from this connection (and from producing
   more replies for it) until the socket drains. *)
let over_backpressure t = t.out_bytes > t.max_outbox

let be32_put len =
  let b = Bytes.create header_bytes in
  Bytes.set b 0 (Char.chr ((len lsr 24) land 0xff));
  Bytes.set b 1 (Char.chr ((len lsr 16) land 0xff));
  Bytes.set b 2 (Char.chr ((len lsr 8) land 0xff));
  Bytes.set b 3 (Char.chr (len land 0xff));
  b

let be32_get s off =
  (Char.code s.[off] lsl 24)
  lor (Char.code s.[off + 1] lsl 16)
  lor (Char.code s.[off + 2] lsl 8)
  lor Char.code s.[off + 3]

let queue_msg t payload =
  let len = String.length payload in
  if len > max_frame then Error.limit "Conn: frame of %d bytes" len;
  if not t.closed then begin
    let framed = Bytes.cat (be32_put len) (Bytes.of_string payload) in
    Queue.add framed t.outbox;
    t.out_bytes <- t.out_bytes + Bytes.length framed;
    t.bytes_out <- t.bytes_out + len
  end

(* Pop every complete frame out of [inbuf]. *)
let read_frames t =
  let frames = ref [] in
  let continue = ref true in
  while !continue do
    let n = String.length t.inbuf in
    if n < header_bytes then continue := false
    else begin
      let len = be32_get t.inbuf 0 in
      if len > max_frame then Error.limit "Conn: incoming frame of %d bytes" len;
      if n < header_bytes + len then continue := false
      else begin
        frames := String.sub t.inbuf header_bytes len :: !frames;
        t.inbuf <-
          String.sub t.inbuf (header_bytes + len) (n - header_bytes - len);
        t.bytes_in <- t.bytes_in + len
      end
    end
  done;
  List.rev !frames

let handle_readable t =
  if t.closed then `Eof
  else begin
    let chunk_len = 65536 in
    let chunk = Bytes.create chunk_len in
    let eof = ref false in
    let continue = ref true in
    while !continue do
      match Unix.read t.fd chunk 0 chunk_len with
      | 0 ->
          eof := true;
          continue := false
      | n -> t.inbuf <- t.inbuf ^ Bytes.sub_string chunk 0 n
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          continue := false
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | exception Unix.Unix_error (Unix.ECONNRESET, _, _) ->
          eof := true;
          continue := false
    done;
    let frames = read_frames t in
    match frames with
    | [] when !eof -> `Eof
    | frames -> `Msgs (frames, !eof)
  end

let handle_writable t =
  if not t.closed then begin
    let continue = ref true in
    while !continue && not (Queue.is_empty t.outbox) do
      let head = Queue.peek t.outbox in
      let remaining = Bytes.length head - t.out_head_pos in
      match Unix.write t.fd head t.out_head_pos remaining with
      | n ->
          t.out_bytes <- t.out_bytes - n;
          if Int.equal n remaining then begin
            ignore (Queue.pop t.outbox);
            t.out_head_pos <- 0
          end
          else t.out_head_pos <- t.out_head_pos + n
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          continue := false
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | exception
          Unix.Unix_error
            ((Unix.EPIPE | Unix.ECONNRESET | Unix.ENOTCONN), _, _) ->
          t.closed <- true;
          continue := false
    done
  end

let close t =
  if not t.closed then begin
    t.closed <- true;
    match Unix.close t.fd with
    | () -> ()
    | exception Unix.Unix_error _ -> ()
  end
