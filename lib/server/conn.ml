module Error = Fsync_core.Error

let header_bytes = Fsync_net.Fd_transport.header_bytes

let max_frame = Fsync_net.Fd_transport.max_frame

let chunk_len = 65536

(* Writes to a peer that already vanished raise EPIPE only when the
   default kill-the-process SIGPIPE disposition is disabled; do it once
   for any process that owns connections. *)
let ignore_sigpipe =
  lazy
    (match Sys.set_signal Sys.sigpipe Sys.Signal_ignore with
    | () -> ()
    | exception Invalid_argument _ -> ()
    | exception Sys_error _ -> ())

type t = {
  fd : Unix.file_descr;
  mutable inbuf : Bytes.t;        (* raw bytes read, not yet framed out *)
  mutable in_start : int;         (* first unconsumed byte in [inbuf] *)
  mutable in_len : int;           (* unconsumed bytes from [in_start] *)
  outbox : Bytes.t Queue.t;       (* framed messages awaiting the socket *)
  mutable out_head_pos : int;     (* bytes of the queue head already sent *)
  mutable out_bytes : int;        (* total unsent bytes in the outbox *)
  max_outbox : int;
  mutable closed : bool;
  mutable peer_gone : bool;       (* a write hit a dead peer; fd still open *)
  mutable bytes_in : int;         (* payload bytes received *)
  mutable bytes_out : int;        (* payload bytes queued for sending *)
}

let create ?(max_outbox = 4 * 1024 * 1024) fd =
  Lazy.force ignore_sigpipe;
  Unix.set_nonblock fd;
  {
    fd;
    inbuf = Bytes.create chunk_len;
    in_start = 0;
    in_len = 0;
    outbox = Queue.create ();
    out_head_pos = 0;
    out_bytes = 0;
    max_outbox;
    closed = false;
    peer_gone = false;
    bytes_in = 0;
    bytes_out = 0;
  }

let fd t = t.fd

let closed t = t.closed

let peer_gone t = t.peer_gone

let bytes_in t = t.bytes_in

let bytes_out t = t.bytes_out

let pending_out t = t.out_bytes

let wants_write t = (not t.closed) && (not t.peer_gone) && t.out_bytes > 0

(* Backpressure: while more than [max_outbox] bytes sit unsent, the
   event loop stops reading from this connection (and from producing
   more replies for it) until the socket drains. *)
let over_backpressure t = t.out_bytes > t.max_outbox

let be32_put len =
  let b = Bytes.create header_bytes in
  Bytes.set b 0 (Char.chr ((len lsr 24) land 0xff));
  Bytes.set b 1 (Char.chr ((len lsr 16) land 0xff));
  Bytes.set b 2 (Char.chr ((len lsr 8) land 0xff));
  Bytes.set b 3 (Char.chr (len land 0xff));
  b

let be32_get b off =
  (Char.code (Bytes.get b off) lsl 24)
  lor (Char.code (Bytes.get b (off + 1)) lsl 16)
  lor (Char.code (Bytes.get b (off + 2)) lsl 8)
  lor Char.code (Bytes.get b (off + 3))

let queue_msg t payload =
  let len = String.length payload in
  if len > max_frame then Error.limit "Conn: frame of %d bytes" len;
  if not (t.closed || t.peer_gone) then begin
    let framed = Bytes.cat (be32_put len) (Bytes.of_string payload) in
    Queue.add framed t.outbox;
    t.out_bytes <- t.out_bytes + Bytes.length framed;
    t.bytes_out <- t.bytes_out + len
  end

(* Make room for [extra] fresh bytes after the unconsumed region:
   compact to the front when the consumed prefix frees enough space,
   otherwise grow geometrically.  Either way accumulation of an n-byte
   frame costs O(n) amortized, not O(n^2) of repeated concatenation. *)
let ensure_capacity t extra =
  let cap = Bytes.length t.inbuf in
  if t.in_start + t.in_len + extra > cap then
    if t.in_len + extra <= cap then begin
      Bytes.blit t.inbuf t.in_start t.inbuf 0 t.in_len;
      t.in_start <- 0
    end
    else begin
      let grown = Bytes.create (max (2 * cap) (t.in_len + extra)) in
      Bytes.blit t.inbuf t.in_start grown 0 t.in_len;
      t.inbuf <- grown;
      t.in_start <- 0
    end

(* Pop every complete frame out of the input buffer. *)
let read_frames t =
  let frames = ref [] in
  let continue = ref true in
  while !continue do
    if t.in_len < header_bytes then continue := false
    else begin
      let len = be32_get t.inbuf t.in_start in
      if len > max_frame then Error.limit "Conn: incoming frame of %d bytes" len;
      if t.in_len < header_bytes + len then continue := false
      else begin
        frames :=
          Bytes.sub_string t.inbuf (t.in_start + header_bytes) len :: !frames;
        t.in_start <- t.in_start + header_bytes + len;
        t.in_len <- t.in_len - header_bytes - len;
        t.bytes_in <- t.bytes_in + len
      end
    end
  done;
  if Int.equal t.in_len 0 then t.in_start <- 0;
  List.rev !frames

let handle_readable t =
  if t.closed || t.peer_gone then `Eof
  else begin
    let eof = ref false in
    let continue = ref true in
    while !continue do
      ensure_capacity t chunk_len;
      match Unix.read t.fd t.inbuf (t.in_start + t.in_len) chunk_len with
      | 0 ->
          eof := true;
          continue := false
      | n -> t.in_len <- t.in_len + n
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          continue := false
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | exception Unix.Unix_error (Unix.ECONNRESET, _, _) ->
          eof := true;
          continue := false
    done;
    let frames = read_frames t in
    match frames with
    | [] when !eof -> `Eof
    | frames -> `Msgs (frames, !eof)
  end

let handle_writable t =
  if not (t.closed || t.peer_gone) then begin
    let continue = ref true in
    while !continue && not (Queue.is_empty t.outbox) do
      let head = Queue.peek t.outbox in
      let remaining = Bytes.length head - t.out_head_pos in
      match Unix.write t.fd head t.out_head_pos remaining with
      | n ->
          t.out_bytes <- t.out_bytes - n;
          if Int.equal n remaining then begin
            ignore (Queue.pop t.outbox);
            t.out_head_pos <- 0
          end
          else t.out_head_pos <- t.out_head_pos + n
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          continue := false
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | exception
          Unix.Unix_error
            ((Unix.EPIPE | Unix.ECONNRESET | Unix.ENOTCONN), _, _) ->
          (* The peer is gone: nothing queued can ever be delivered.
             Drop the outbox but leave [closed] to {!close}, so the fd
             is actually released and the owner still sees this
             connection (to account the session) before reaping it. *)
          t.peer_gone <- true;
          Queue.clear t.outbox;
          t.out_head_pos <- 0;
          t.out_bytes <- 0;
          continue := false
    done
  end

let close t =
  if not t.closed then begin
    t.closed <- true;
    match Unix.close t.fd with
    | () -> ()
    | exception Unix.Unix_error _ -> ()
  end
