(** Client side of one fsyncd/1 session, as a pure message-in /
    messages-out state machine.

    Symmetric to {!Session}: the transport (a blocking TCP pull, a
    socketpair under the loopback test driver, or a plain in-memory
    channel) feeds frames to {!on_message} and sends whatever comes
    back.  The puller mirrors the server's {!Fsync_core.Block_tree},
    matches each round's hashes against all same-length substrings of
    its old copy (predicted-offset first), and reconstructs each file
    from matches plus the deflated tail — falling back to the verified
    full transfer when the weak hashes misled it. *)

type t

type resume_token = {
  rt_root : Fsync_hash.Fingerprint.t;
      (** the collection root the interrupted session was syncing toward *)
  rt_announced : string list;  (** its announce paths, announce order *)
  rt_new_paths : string list;  (** its verdict's new paths, path-sorted *)
  rt_completed : (string * string) list;
      (** files already received and fingerprint-verified *)
}
(** Client-side resume state (DESIGN.md §12).  A reconnecting puller
    hands it back via [create ?resume]; if the server still serves the
    same root and this attempt announces the same replica, the puller
    opens with a [Resume] bitmap and the server skips the completed
    jobs. *)

val create :
  ?scope:Fsync_obs.Scope.t ->
  ?trace_id:Fsync_obs.Trace_id.t ->
  ?resume:resume_token ->
  (string * string) list ->
  t
(** Over the client's old [(path, content)] replica, in announce
    order.  [trace_id] rides in the [Hello] so the server tags its
    events with the same id; [scope] receives the client's mirror of
    the session/phase spans ([session], [phase:metadata],
    [phase:hash_rounds], [phase:literals]) — see {!Session.create}. *)

val resume_token : t -> resume_token option
(** Progress snapshot for a future attempt: [None] until at least one
    file completed (falls back to the token [create] was given, so
    progress is cumulative across attempts). *)

val start : t -> string list
(** The opening frames to send ([Hello]). *)

val on_message : t -> string -> string list
(** Feed one received frame; returns encoded frames to send back.
    Raises typed {!Fsync_core.Error} values on protocol violations or
    when end-to-end verification fails ([Bye] root mismatch). *)

val finished : t -> bool

val result : t -> (string * string) list
(** The synchronized replica, path-sorted: unchanged files kept,
    changed/new files as received, absent-on-server files dropped.
    Meaningful once {!finished}. *)

type stats = {
  rounds : int;
  matched_bytes : int;  (** bytes reused from the old copy *)
  literal_bytes : int;  (** bytes that crossed the wire as literals *)
  resumed_files : int;  (** jobs skipped thanks to the resume token *)
}

val stats : t -> stats
