module Fp = Fsync_hash.Fingerprint
module Block_tree = Fsync_core.Block_tree
module Error = Fsync_core.Error
module Deflate = Fsync_compress.Deflate
module Meta_wire = Fsync_collection.Meta_wire

type job = { path : string; content : string; fp : Fp.t; has_old : bool }

type counters = {
  mutable hashes_total : int;
  mutable hashes_cached : int;
  mutable full_fallbacks : int;
  mutable rounds : int;
}

let fresh_counters () =
  { hashes_total = 0; hashes_cached = 0; full_fallbacks = 0; rounds = 0 }

type state =
  | Idle
  | Rounds of Block_tree.t
  | Awaiting_ack of { mutable full_sent : bool }
  | Complete

type t = {
  who : string;
  config : Msg.sync_config;
  cache : Sigcache.t;
  counters : counters;
  full_content : job -> string option;
  on_fallback : unit -> unit;
  job : job;
  mutable state : state;
}

let create ?(full_content = fun _ -> None) ?(on_fallback = fun () -> ())
    ~who ~config ~cache ~counters job =
  { who; config; cache; counters; full_content; on_fallback; job;
    state = Idle }

let job t = t.job

let expecting t =
  match t.state with
  | Idle | Rounds _ -> `Matched
  | Awaiting_ack _ -> `Ack
  | Complete -> `Done

(* The verified full-file fallback ('Z' when compression pays, 'R'
   otherwise; never 'D' — the server does not hold the client's copy).
   [full_content] lets {!Session} substitute a store-assembled payload
   for the in-memory one. *)
let full_msg t =
  let content =
    match t.full_content t.job with Some c -> c | None -> t.job.content
  in
  let z = Deflate.compress content in
  let tag, body =
    if String.length z < String.length content then ('Z', z) else ('R', content)
  in
  Msg.Full
    (Meta_wire.encode_file_msg ~path:t.job.path ~fp:t.job.fp ~tag ~body)

(* One round's hash burst: the cached full-level vector indexed by
   [off / size] covers every active block, whichever client asks. *)
let level_hashes t tree =
  let size = Block_tree.current_size tree in
  let vector, hit =
    Sigcache.find_or_compute t.cache ~fp:t.job.fp ~size
      ~bits:t.config.hash_bits t.job.content
  in
  let hs =
    Array.of_list
      (List.map
         (fun (b : Block_tree.block) -> vector.(b.off / size))
         (Block_tree.active_blocks tree))
  in
  t.counters.hashes_total <- t.counters.hashes_total + Array.length hs;
  if hit then t.counters.hashes_cached <- t.counters.hashes_cached + Array.length hs;
  hs

let start t =
  if
    (not t.job.has_old)
    || String.length t.job.content < 2 * t.config.min_block
  then begin
    (* No old copy to match against, or too small for even one split:
       the verified full transfer is strictly cheaper than a round. *)
    t.state <- Awaiting_ack { full_sent = true };
    [ full_msg t ]
  end
  else begin
    let tree =
      Block_tree.create
        ~file_len:(String.length t.job.content)
        ~start_block:t.config.start_block
    in
    t.state <- Rounds tree;
    [
      Msg.File_begin
        {
          path = t.job.path;
          new_len = String.length t.job.content;
          fp = t.job.fp;
        };
      Msg.Hashes (level_hashes t tree);
    ]
  end

let on_matched t bitmap =
  match t.state with
  | Idle | Awaiting_ack _ | Complete ->
      Error.malformed "%s: Matched outside a hash round" t.who
  | Rounds tree -> (
      let active = Block_tree.active_blocks tree in
      let flags = Msg.decode_bitmap ~count:(List.length active) bitmap in
      List.iteri
        (fun i (b : Block_tree.block) -> if flags.(i) then b.confirmed <- true)
        active;
      t.counters.rounds <- t.counters.rounds + 1;
      match Msg.decide_next ~config:t.config tree with
      | `Split ->
          Block_tree.split tree;
          [ Msg.Hashes (level_hashes t tree) ]
      | `Tail ->
          let buf = Buffer.create 256 in
          List.iter
            (fun (b : Block_tree.block) ->
              Buffer.add_substring buf t.job.content b.off b.len)
            (Block_tree.active_blocks tree);
          t.state <- Awaiting_ack { full_sent = false };
          [ Msg.Tail (Deflate.compress (Buffer.contents buf)) ])

let on_ack t ok =
  match t.state with
  | Idle | Rounds _ | Complete ->
      Error.malformed "%s: ack outside a transfer" t.who
  | Awaiting_ack ack ->
      if ok then begin
        t.state <- Complete;
        `Complete
      end
      else if ack.full_sent then
        Error.fail
          (Error.Verification_failed
             (Printf.sprintf "%s: %s rejected after verified full transfer"
                t.who t.job.path))
      else begin
        ack.full_sent <- true;
        t.counters.full_fallbacks <- t.counters.full_fallbacks + 1;
        t.on_fallback ();
        `Replies [ full_msg t ]
      end
