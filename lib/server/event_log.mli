(** Structured JSONL sink for daemon lifecycle events (DESIGN.md §9).

    One {!Json.t} per line, appended through the injectable
    {!Fsync_store.Io} seam so the fault/torture harness covers the log
    path exactly like store writes.  Best-effort by design: failed
    writes are counted in {!errors}, the handle is dropped and lazily
    reopened, and nothing ever propagates to the caller — telemetry
    must not be able to take the daemon down.

    With [max_bytes > 0] the sink rotates size-based: when a write
    would push the current file past the cap, [FILE] is renamed to
    [FILE.1] (clobbering the previous generation) and a fresh file
    starts.  An existing file's size is picked up at {!create} so
    rotation survives daemon restarts. *)

type t

val create : ?io:Fsync_store.Io.t -> ?max_bytes:int -> string -> t
(** Sink appending to the given path.  [io] defaults to the real
    filesystem; [max_bytes] defaults to [0] (never rotate).  The file
    is opened lazily on first write. *)

val write : t -> Fsync_obs.Json.t -> unit
(** Append one event as a single JSON line. *)

val append_raw : t -> string -> unit
(** Append pre-rendered bytes (a whole JSONL block — the daemon streams
    {!Fsync_obs.Registry.to_jsonl} dumps this way).  Rotation applies
    before the write like {!write}. *)

val errors : t -> int
(** Write/rotate failures absorbed so far. *)

val path : t -> string

val close : t -> unit
(** Fsync (best effort) and close the handle; the sink stays usable —
    a later write reopens. *)
