module Fp = Fsync_hash.Fingerprint
module Varint = Fsync_util.Varint
module Error = Fsync_core.Error

(* Protocol revision 2 appends an optional 16-byte trace id to [Hello]
   (DESIGN.md §9); revision 3 appends an optional swarm extension after
   it (peer id + entry-table root digest, DESIGN.md §13).  Older peers
   interoperate: a v1 client's Hello simply carries no id (the server
   mints one), a v2 client's no swarm extension, and both endpoints
   accept any version in [min_version..version]. *)
let version = 3

let min_version = 1

let version_ok v = v >= min_version && v <= version

type sync_config = { start_block : int; min_block : int; hash_bits : int }

let default_sync_config = { start_block = 2048; min_block = 64; hash_bits = 30 }

let clamp lo hi v = if v < lo then lo else if v > hi then hi else v

let validate_sync_config c =
  let hash_bits = clamp 8 56 c.hash_bits in
  let min_block = max 16 c.min_block in
  let start_block = max min_block c.start_block in
  { start_block; min_block; hash_bits }

let hash_width c = (c.hash_bits + 7) / 8

let trace_bytes = 16

type swarm_hello = { peer : string; summary : Fp.t }

type t =
  | Hello of {
      version : int;
      trace : string option;
      swarm : swarm_hello option;
    }
      (** [trace], when present, is exactly {!trace_bytes} raw bytes *)
  | Welcome of {
      version : int;
      file_count : int;
      root : Fp.t;
      config : sync_config;
    }
  | Announce of string
  | Verdict of string
  | File_begin of { path : string; new_len : int; fp : Fp.t }
  | Hashes of int array
  | Matched of string
  | Tail of string
  | Full of string
  | File_ack of bool
  | Bye of { root : Fp.t }
  | Error_msg of string
  | Push_begin of {
      path : string;
      file_len : int;
      fp : Fp.t;
      manifest : (Fp.t * int) list;
    }
  | Chunk_need of string
  | Chunk_data of string
  | Push_done
  | Resume of { root : Fp.t; bitmap : string }
  | Busy of { retry_after_ms : int }
  | Swarm_table of string
  | Swarm_recon of string
  | Swarm_query of string
  | Swarm_fetch of string
  | Swarm_end

let tag_of = function
  | Hello _ -> 'H'
  | Welcome _ -> 'W'
  | Announce _ -> 'A'
  | Verdict _ -> 'V'
  | File_begin _ -> 'B'
  | Hashes _ -> 'S'
  | Matched _ -> 'M'
  | Tail _ -> 'T'
  | Full _ -> 'F'
  | File_ack _ -> 'K'
  | Bye _ -> 'Y'
  | Error_msg _ -> 'E'
  | Push_begin _ -> 'P'
  | Chunk_need _ -> 'N'
  | Chunk_data _ -> 'C'
  | Push_done -> 'D'
  | Resume _ -> 'R'
  | Busy _ -> 'U'
  | Swarm_table _ -> 'G'
  | Swarm_recon _ -> 'J'
  | Swarm_query _ -> 'Q'
  | Swarm_fetch _ -> 'X'
  | Swarm_end -> 'O'

let label = function
  | Hello _ -> "srv:hello"
  | Welcome _ -> "srv:welcome"
  | Announce _ -> "linear:announce"
  | Verdict _ -> "linear:verdict"
  | File_begin _ -> "srv:file-begin"
  | Hashes _ -> "srv:hashes"
  | Matched _ -> "srv:matched"
  | Tail _ -> "srv:tail"
  | Full _ -> "file:data"
  | File_ack _ -> "srv:ack"
  | Bye _ -> "srv:bye"
  | Error_msg _ -> "srv:error"
  | Push_begin _ -> "push:begin"
  | Chunk_need _ -> "push:need"
  | Chunk_data _ -> "push:data"
  | Push_done -> "push:done"
  | Resume _ -> "srv:resume"
  | Busy _ -> "srv:busy"
  | Swarm_table _ -> "swarm:table"
  | Swarm_recon _ -> "swarm:recon"
  | Swarm_query _ -> "swarm:query"
  | Swarm_fetch _ -> "swarm:fetch"
  | Swarm_end -> "swarm:end"

(* Label an already-encoded frame by its tag byte alone, for channel
   transcripts on transports that never decode what they carry. *)
let wire_label raw =
  if Int.equal (String.length raw) 0 then "srv:?"
  else
    match raw.[0] with
    | 'H' -> "srv:hello"
    | 'W' -> "srv:welcome"
    | 'A' -> "linear:announce"
    | 'V' -> "linear:verdict"
    | 'B' -> "srv:file-begin"
    | 'S' -> "srv:hashes"
    | 'M' -> "srv:matched"
    | 'T' -> "srv:tail"
    | 'F' -> "file:data"
    | 'K' -> "srv:ack"
    | 'Y' -> "srv:bye"
    | 'E' -> "srv:error"
    | 'P' -> "push:begin"
    | 'N' -> "push:need"
    | 'C' -> "push:data"
    | 'D' -> "push:done"
    | 'R' -> "srv:resume"
    | 'U' -> "srv:busy"
    | 'G' -> "swarm:table"
    | 'J' -> "swarm:recon"
    | 'Q' -> "swarm:query"
    | 'X' -> "swarm:fetch"
    | 'O' -> "swarm:end"
    | _ -> "srv:?"

(* ---- encoding ---- *)

let put_string b s =
  Varint.write b (String.length s);
  Buffer.add_string b s

let put_hash_le b ~width v =
  for i = 0 to width - 1 do
    Buffer.add_char b (Char.chr ((v lsr (8 * i)) land 0xff))
  done

let put_manifest b manifest =
  Varint.write b (List.length manifest);
  List.iter
    (fun (fp, len) ->
      Buffer.add_string b (Fp.to_raw fp);
      Varint.write b len)
    manifest

let encode ~config msg =
  let b = Buffer.create 64 in
  Buffer.add_char b (tag_of msg);
  (match msg with
  | Hello { version; trace; swarm } ->
      Varint.write b version;
      (* The swarm extension sits after the trace id, so its presence
         requires one: a swarm Hello without a caller-supplied trace
         carries an all-zero id (the server mints its own then, exactly
         as for a v1 peer). *)
      (match trace with
      | Some id when Int.equal (String.length id) trace_bytes ->
          Buffer.add_string b id
      | Some _ | None ->
          if Option.is_some swarm then
            Buffer.add_string b (String.make trace_bytes '\000'));
      (match swarm with
      | Some { peer; summary } ->
          put_string b peer;
          Buffer.add_string b (Fp.to_raw summary)
      | None -> ())
  | Welcome { version; file_count; root; config } ->
      Varint.write b version;
      Varint.write b file_count;
      Buffer.add_string b (Fp.to_raw root);
      Varint.write b config.start_block;
      Varint.write b config.min_block;
      Varint.write b config.hash_bits
  | Announce body | Verdict body | Matched body | Tail body | Full body ->
      Buffer.add_string b body
  | File_begin { path; new_len; fp } ->
      put_string b path;
      Varint.write b new_len;
      Buffer.add_string b (Fp.to_raw fp)
  | Hashes hs ->
      let width = hash_width config in
      Varint.write b (Array.length hs);
      Array.iter (fun h -> put_hash_le b ~width h) hs
  | File_ack ok -> Buffer.add_char b (if ok then '\001' else '\000')
  | Bye { root } -> Buffer.add_string b (Fp.to_raw root)
  | Error_msg m -> put_string b m
  | Push_begin { path; file_len; fp; manifest } ->
      put_string b path;
      Varint.write b file_len;
      Buffer.add_string b (Fp.to_raw fp);
      put_manifest b manifest
  | Chunk_need bitmap -> Buffer.add_string b bitmap
  | Chunk_data z -> Buffer.add_string b z
  | Swarm_table body | Swarm_recon body | Swarm_query body | Swarm_fetch body
    ->
      Buffer.add_string b body
  | Push_done | Swarm_end -> ()
  | Resume { root; bitmap } ->
      Buffer.add_string b (Fp.to_raw root);
      Buffer.add_string b bitmap
  | Busy { retry_after_ms } -> Varint.write b retry_after_ms);
  Buffer.contents b

(* ---- decoding (hardened: every length validated before any read) ---- *)

let need msg pos n what =
  if pos + n > String.length msg then
    Error.truncated "Msg: %s needs %d bytes, %d left" what n
      (String.length msg - pos)

let get_string msg ~pos what =
  let len, p = Varint.read msg ~pos in
  if len < 0 then Error.malformed "Msg: negative %s length" what;
  need msg p len what;
  (String.sub msg p len, p + len)

let get_fp msg ~pos what =
  need msg pos Fp.size_bytes what;
  (Fp.of_raw (String.sub msg pos Fp.size_bytes), pos + Fp.size_bytes)

let get_hash_le msg ~pos ~width =
  let v = ref 0 in
  for i = 0 to width - 1 do
    v := !v lor (Char.code msg.[pos + i] lsl (8 * i))
  done;
  !v

let rest msg pos = String.sub msg pos (String.length msg - pos)

let get_manifest msg ~pos =
  let count, pos = Varint.read msg ~pos in
  (* Each entry is at least fp + a 1-byte varint: bound [count] before
     trusting it (same discipline as the Hashes decoder). *)
  if count < 0 || count > (String.length msg - pos) / (Fp.size_bytes + 1)
  then
    Error.truncated "Msg: %d manifest entries overrun %d bytes" count
      (String.length msg);
  let pos = ref pos in
  let entries =
    List.init count (fun _ ->
        let fp, p = get_fp msg ~pos:!pos "manifest chunk" in
        let len, p = Varint.read msg ~pos:p in
        if len < 0 then Error.malformed "Msg: negative chunk length";
        pos := p;
        (fp, len))
  in
  (entries, !pos)

let decode ~config msg =
  if String.equal msg "" then Error.truncated "Msg: empty message";
  let pos = 1 in
  match msg.[0] with
  | 'H' ->
      let version, pos = Varint.read msg ~pos in
      (* A v1 Hello ends at the varint; v2 appends exactly the trace
         id; v3 may append the swarm extension after it.  Any other
         shape is a framing bug, not a trace. *)
      let remaining = String.length msg - pos in
      if Int.equal remaining 0 then
        Hello { version; trace = None; swarm = None }
      else if Int.equal remaining trace_bytes then
        Hello { version; trace = Some (rest msg pos); swarm = None }
      else if remaining > trace_bytes then begin
        let trace = String.sub msg pos trace_bytes in
        let pos = pos + trace_bytes in
        let peer, pos = get_string msg ~pos "swarm peer id" in
        let summary, pos = get_fp msg ~pos "swarm summary" in
        if not (Int.equal pos (String.length msg)) then
          Error.malformed "Msg: %d stray bytes after swarm hello"
            (String.length msg - pos);
        let trace =
          if String.equal trace (String.make trace_bytes '\000') then None
          else Some trace
        in
        Hello { version; trace; swarm = Some { peer; summary } }
      end
      else Hello { version; trace = None; swarm = None }
  | 'W' ->
      let version, pos = Varint.read msg ~pos in
      let file_count, pos = Varint.read msg ~pos in
      if file_count < 0 then Error.malformed "Msg: negative file count";
      let root, pos = get_fp msg ~pos "welcome root" in
      let start_block, pos = Varint.read msg ~pos in
      let min_block, pos = Varint.read msg ~pos in
      let hash_bits, _ = Varint.read msg ~pos in
      let config =
        validate_sync_config { start_block; min_block; hash_bits }
      in
      Welcome { version; file_count; root; config }
  | 'A' -> Announce (rest msg pos)
  | 'V' -> Verdict (rest msg pos)
  | 'B' ->
      let path, pos = get_string msg ~pos "file path" in
      let new_len, pos = Varint.read msg ~pos in
      if new_len < 0 then Error.malformed "Msg: negative file length";
      let fp, _ = get_fp msg ~pos "file fingerprint" in
      File_begin { path; new_len; fp }
  | 'S' ->
      let width = hash_width config in
      let count, pos = Varint.read msg ~pos in
      (* Bound [count] before any multiplication: a hostile varint near
         max_int would overflow [count * width] negative and slip past
         a sum-based check. *)
      if count < 0 || count > (String.length msg - pos) / width then
        Error.truncated "Msg: %d hashes of %d bytes overrun %d" count width
          (String.length msg);
      Hashes
        (Array.init count (fun i -> get_hash_le msg ~pos:(pos + (i * width)) ~width))
  | 'M' -> Matched (rest msg pos)
  | 'T' -> Tail (rest msg pos)
  | 'F' -> Full (rest msg pos)
  | 'K' ->
      need msg pos 1 "ack";
      File_ack (Char.equal msg.[pos] '\001')
  | 'Y' ->
      let root, _ = get_fp msg ~pos "bye root" in
      Bye { root }
  | 'E' ->
      let m, _ = get_string msg ~pos "error text" in
      Error_msg m
  | 'P' ->
      let path, pos = get_string msg ~pos "push path" in
      let file_len, pos = Varint.read msg ~pos in
      if file_len < 0 then Error.malformed "Msg: negative push file length";
      let fp, pos = get_fp msg ~pos "push fingerprint" in
      let manifest, _ = get_manifest msg ~pos in
      Push_begin { path; file_len; fp; manifest }
  | 'N' -> Chunk_need (rest msg pos)
  | 'C' -> Chunk_data (rest msg pos)
  | 'D' -> Push_done
  | 'R' ->
      let root, pos = get_fp msg ~pos "resume root" in
      Resume { root; bitmap = rest msg pos }
  | 'U' ->
      let retry_after_ms, _ = Varint.read msg ~pos in
      if retry_after_ms < 0 then Error.malformed "Msg: negative retry-after";
      Busy { retry_after_ms }
  | 'G' -> Swarm_table (rest msg pos)
  | 'J' -> Swarm_recon (rest msg pos)
  | 'Q' -> Swarm_query (rest msg pos)
  | 'X' -> Swarm_fetch (rest msg pos)
  | 'O' -> Swarm_end
  | c -> Error.malformed "Msg: unknown tag %C" c

(* ---- shared protocol rules ----

   Both endpoints mirror the same block tree, so the bitmap order and
   the split-vs-tail decision must be computed identically on each side
   from public state only.  They live here, next to the codec, so the
   daemon and the puller cannot drift. *)

let encode_bitmap bits =
  let count = List.length bits in
  let b = Bytes.make ((count + 7) / 8) '\000' in
  List.iteri
    (fun i v ->
      if v then begin
        let byte = i / 8 and bit = 7 - (i mod 8) in
        Bytes.set b byte
          (Char.chr (Char.code (Bytes.get b byte) lor (1 lsl bit)))
      end)
    bits;
  Bytes.to_string b

let decode_bitmap ~count s =
  if not (Int.equal (String.length s) ((count + 7) / 8)) then
    Error.malformed "Msg: bitmap of %d bytes for %d blocks" (String.length s)
      count;
  Array.init count (fun i ->
      let byte = i / 8 and bit = 7 - (i mod 8) in
      not (Int.equal ((Char.code s.[byte] lsr bit) land 1) 0))

let decide_next ~config tree =
  match Fsync_core.Block_tree.active_blocks tree with
  | [] -> `Tail
  | _ :: _ ->
      if Fsync_core.Block_tree.current_size tree / 2 < config.min_block then
        `Tail
      else `Split
