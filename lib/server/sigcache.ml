module Poly_hash = Fsync_hash.Poly_hash
module Fp = Fsync_hash.Fingerprint
module Scope = Fsync_obs.Scope

(* (raw fingerprint, block size, hash bits): the level vector is a pure
   function of this triple, independent of any client's match state. *)
type key = string * int * int

type entry = { hashes : int array; mutable stamp : int; warm : bool }

type persist = {
  save : fp:Fp.t -> size:int -> bits:int -> int array -> unit;
}

type t = {
  table : (key, entry) Hashtbl.t;
  max_entries : int;
  scope : Scope.t;
  mutable persist : persist option;
  mutable clock : int;
  mutable lookups : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable warmed : int;
  mutable warm_hits : int;
}

let create ?(max_entries = 1024) ?(scope = Scope.disabled) () =
  {
    table = Hashtbl.create 64;
    max_entries = max 1 max_entries;
    scope;
    persist = None;
    clock = 0;
    lookups = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
    warmed = 0;
    warm_hits = 0;
  }

let set_persist t p = t.persist <- Some p

let tick t =
  t.clock <- t.clock + 1;
  t.clock

(* The level vector is a pure function of (content, size): the truncated
   hash of every size-aligned block, the short tail included.  Every
   block the session tree ever exposes at nominal size [size] starts at
   a multiple of [size] with length [min size (n - off)], so one vector
   serves every client and every round at that level. *)
let compute content ~size ~bits =
  let n = String.length content in
  if size <= 0 || n = 0 then [||]
  else begin
    let count = (n + size - 1) / size in
    Array.init count (fun i ->
        let off = i * size in
        let len = min size (n - off) in
        Poly_hash.truncate (Poly_hash.hash_sub content ~pos:off ~len) ~bits)
  end

let evict_lru t =
  let victim = ref None in
  Hashtbl.iter
    (fun k e ->
      match !victim with
      | Some (_, stamp) when stamp <= e.stamp -> ()
      | _ -> victim := Some (k, e.stamp))
    t.table;
  match !victim with
  | Some (k, _) ->
      Hashtbl.remove t.table k;
      t.evictions <- t.evictions + 1;
      Scope.incr t.scope "sig_cache_evictions"
  | None -> ()

let seed t ~fp ~size ~bits hashes =
  let key = (Fp.to_raw fp, size, bits) in
  if
    Hashtbl.length t.table < t.max_entries
    && not (Hashtbl.mem t.table key)
  then begin
    Hashtbl.replace t.table key { hashes; stamp = tick t; warm = true };
    t.warmed <- t.warmed + 1
  end

let find_or_compute t ~fp ~size ~bits content =
  let key = (Fp.to_raw fp, size, bits) in
  t.lookups <- t.lookups + 1;
  match Hashtbl.find_opt t.table key with
  | Some e ->
      e.stamp <- tick t;
      t.hits <- t.hits + 1;
      Scope.incr t.scope "sig_cache_hits";
      if e.warm then begin
        t.warm_hits <- t.warm_hits + 1;
        Scope.incr t.scope "sig_cache_warm_hits"
      end;
      (e.hashes, true)
  | None ->
      t.misses <- t.misses + 1;
      Scope.incr t.scope "sig_cache_misses";
      let hashes = compute content ~size ~bits in
      if Hashtbl.length t.table >= t.max_entries then evict_lru t;
      Hashtbl.replace t.table key { hashes; stamp = tick t; warm = false };
      (match t.persist with
      | Some p -> p.save ~fp ~size ~bits hashes
      | None -> ());
      (hashes, false)

type stats = {
  hits : int;
  misses : int;
  lookups : int;
  entries : int;
  evictions : int;
  warmed : int;
  warm_hits : int;
}

let stats (t : t) =
  {
    hits = t.hits;
    misses = t.misses;
    lookups = t.lookups;
    entries = Hashtbl.length t.table;
    evictions = t.evictions;
    warmed = t.warmed;
    warm_hits = t.warm_hits;
  }

let hit_rate (t : t) =
  if t.lookups = 0 then 0.0 else float_of_int t.hits /. float_of_int t.lookups

let warm_hit_rate (t : t) =
  if t.lookups = 0 then 0.0
  else float_of_int t.warm_hits /. float_of_int t.lookups
