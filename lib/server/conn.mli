(** Non-blocking framed connection for the daemon's event loop.

    One [t] wraps one accepted socket.  Reads accumulate in an input
    buffer and surface as complete frames; writes queue framed messages
    in a bounded outbox drained as the socket accepts bytes.

    Backpressure: once more than [max_outbox] bytes sit unsent the loop
    must stop reading from (and producing replies for) this connection
    until {!handle_writable} drains it — see {!over_backpressure}. *)

type t

val create : ?max_outbox:int -> Unix.file_descr -> t
(** Sets the fd non-blocking.  [max_outbox] defaults to 4 MiB. *)

val fd : t -> Unix.file_descr

val closed : t -> bool

val peer_gone : t -> bool
(** True once a write hit a dead peer (EPIPE and friends).  The fd is
    still open — the owner must observe the flag, account the session
    and call {!close}. *)

val bytes_in : t -> int
(** Payload bytes received (framing headers excluded). *)

val bytes_out : t -> int
(** Payload bytes queued for sending (framing headers excluded). *)

val pending_out : t -> int
(** Unsent bytes currently in the outbox, headers included. *)

val wants_write : t -> bool
(** True when the event loop should select this fd for writability. *)

val over_backpressure : t -> bool

val queue_msg : t -> string -> unit
(** Frame and enqueue one message.  Raises a typed
    {!Fsync_core.Error} on oversized payloads; silently drops after
    {!close}. *)

val handle_readable : t -> [ `Eof | `Msgs of string list * bool ]
(** Drain the socket without blocking and return every complete frame.
    [`Msgs (frames, eof)] reports frames plus whether the peer closed
    after sending them; [`Eof] means closed with nothing new.  Raises a
    typed {!Fsync_core.Error} when an incoming header declares a frame
    over the protocol limit — callers must guard and tear down only
    this connection. *)

val handle_writable : t -> unit
(** Push queued bytes until the socket would block or the outbox is
    empty.  A broken pipe drops the outbox and sets {!peer_gone}; the
    fd stays open until {!close}. *)

val close : t -> unit
(** Idempotent; closes the fd. *)
