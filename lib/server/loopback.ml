module Channel = Fsync_net.Channel
module Fd_transport = Fsync_net.Fd_transport
module Error = Fsync_core.Error

type pull_result = {
  files : (string * string) list;
  stats : Puller.stats;
  c2s_bytes : int;
  s2c_bytes : int;
  c2s_msgs : int;
  s2c_msgs : int;
  roundtrips : int;
}

let count_dir ch dir =
  List.length
    (List.filter
       (fun (d, _, _) ->
         match (d, dir) with
         | Channel.Client_to_server, Channel.Client_to_server
         | Channel.Server_to_client, Channel.Server_to_client ->
             true
         | Channel.Client_to_server, Channel.Server_to_client
         | Channel.Server_to_client, Channel.Client_to_server ->
             false)
       (Channel.transcript ch))

let send_all ch msgs =
  List.iter
    (fun m ->
      Channel.send ch ~label:(Msg.wire_label m) Channel.Client_to_server m)
    msgs

let result_of ch puller =
  {
    files = Puller.result puller;
    stats = Puller.stats puller;
    c2s_bytes = Channel.bytes ch Channel.Client_to_server;
    s2c_bytes = Channel.bytes ch Channel.Server_to_client;
    c2s_msgs = count_dir ch Channel.Client_to_server;
    s2c_msgs = count_dir ch Channel.Server_to_client;
    roundtrips = Channel.roundtrips ch;
  }

let run_pulls ?(max_iterations = 1_000_000) ?prepare ~daemon clients =
  let states =
    List.mapi
      (fun i files ->
        let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Daemon.add_connection daemon b;
        let tr = Fd_transport.of_fd a in
        (match prepare with
        | Some f -> f i (Fd_transport.channel tr)
        | None -> ());
        let puller = Puller.create files in
        send_all (Fd_transport.channel tr) (Puller.start puller);
        (tr, puller, ref false))
      clients
  in
  let remaining () = List.exists (fun (_, _, d) -> not !d) states in
  let iter = ref 0 in
  while remaining () && !iter < max_iterations do
    incr iter;
    Daemon.step ~timeout_s:0.0 daemon;
    List.iter
      (fun (tr, puller, done_) ->
        if not !done_ then
          let ch = Fd_transport.channel tr in
          match Channel.recv_opt ch Channel.Server_to_client with
          | Some frame ->
              send_all ch (Puller.on_message puller frame);
              if Puller.finished puller then done_ := true
          | None -> ())
      states
  done;
  if remaining () then
    Error.fail
      (Error.Channel_empty "Loopback: pulls stalled before completion");
  List.map
    (fun (tr, puller, _) ->
      let r = result_of (Fd_transport.channel tr) puller in
      Fd_transport.close tr;
      r)
    states

type push_result = {
  pusher : Pusher.stats;
  up_bytes : int;
  down_bytes : int;
}

(* Same pump as [run_pulls], upload direction: used concurrently for
   interleaving coverage and one-client-at-a-time when a caller wants
   each push to see the chunks its predecessors left in the store. *)
let run_pushes ?(max_iterations = 1_000_000) ?params ~daemon clients =
  let states =
    List.map
      (fun files ->
        let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Daemon.add_connection daemon b;
        let tr = Fd_transport.of_fd a in
        let pusher = Pusher.create ?params files in
        send_all (Fd_transport.channel tr) (Pusher.start pusher);
        (tr, pusher, ref false))
      clients
  in
  let remaining () = List.exists (fun (_, _, d) -> not !d) states in
  let iter = ref 0 in
  while remaining () && !iter < max_iterations do
    incr iter;
    Daemon.step ~timeout_s:0.0 daemon;
    List.iter
      (fun (tr, pusher, done_) ->
        if not !done_ then
          let ch = Fd_transport.channel tr in
          match Channel.recv_opt ch Channel.Server_to_client with
          | Some frame ->
              send_all ch (Pusher.on_message pusher frame);
              if Pusher.finished pusher then done_ := true
          | None -> ())
      states
  done;
  if remaining () then
    Error.fail
      (Error.Channel_empty "Loopback: pushes stalled before completion");
  List.map
    (fun (tr, pusher, _) ->
      let ch = Fd_transport.channel tr in
      let r =
        {
          pusher = Pusher.stats pusher;
          up_bytes = Channel.bytes ch Channel.Client_to_server;
          down_bytes = Channel.bytes ch Channel.Server_to_client;
        }
      in
      Fd_transport.close tr;
      r)
    states

let run_in_memory ?config ?scope ~cache ~server ~client () =
  let ch = Channel.create () in
  let session = Session.create ?config ?scope ~cache server in
  let puller = Puller.create client in
  let send dir m = Channel.send ch ~label:(Msg.wire_label m) dir m in
  List.iter (send Channel.Client_to_server) (Puller.start puller);
  let progress = ref true in
  while !progress do
    match Channel.recv_opt ch Channel.Client_to_server with
    | Some m ->
        List.iter (send Channel.Server_to_client) (Session.on_message session m)
    | None -> (
        match Channel.recv_opt ch Channel.Server_to_client with
        | Some m ->
            List.iter (send Channel.Client_to_server) (Puller.on_message puller m)
        | None -> progress := false)
  done;
  if not (Puller.finished puller) then
    Error.fail (Error.Channel_empty "Loopback: in-memory run stalled");
  (result_of ch puller, Session.stats session)
