(** Blocking one-shot client for the daemon's admin plane (the other
    end of {!Daemon.admin_listen}): connect, send one framed request,
    read one framed reply, close.  [fsync admin] and [fsync top] are
    thin wrappers over this. *)

val request :
  ?timeout_s:float -> host:string -> port:int -> string -> string
(** Raw round trip; [timeout_s] (default 5 s) bounds the wait for the
    reply.  Raises typed {!Fsync_core.Error} values on timeout or a
    torn-down connection, [Unix.Unix_error] on connect failure. *)

val metrics : ?timeout_s:float -> host:string -> port:int -> unit -> string
(** The Prometheus text exposition. *)

val status :
  ?timeout_s:float -> host:string -> port:int -> unit -> Fsync_obs.Json.t
(** The parsed [fsyncd-status/1] document; raises a typed [Malformed]
    error if the reply is not valid JSON. *)
