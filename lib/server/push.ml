module Channel = Fsync_net.Channel
module Fd_transport = Fsync_net.Fd_transport
module Fault = Fsync_net.Fault
module Error = Fsync_core.Error
module Trace = Fsync_net.Trace
module Prng = Fsync_util.Prng
module Scope = Fsync_obs.Scope
module Trace_id = Fsync_obs.Trace_id

type outcome = {
  stats : Pusher.stats;
  c2s_bytes : int;
  s2c_bytes : int;
  attempts : int;
  backoff_s : float;
}

let connect ~host ~port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  match
    Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port))
  with
  | () -> fd
  | exception e ->
      (match Unix.close fd with
      | () -> ()
      | exception Unix.Unix_error _ -> ());
      raise e

let attempt ?fault ?seed ~idle_timeout_s ~host ~port pusher =
  let fd = connect ~host ~port in
  let tr = Fd_transport.of_fd fd in
  let ch = Fd_transport.channel tr in
  (match fault with
  | Some spec -> ignore (Fault.attach ?seed ch spec)
  | None -> ());
  let send msgs =
    List.iter
      (fun m ->
        Channel.send ch ~label:(Msg.wire_label m) Channel.Client_to_server m)
      msgs
  in
  let go () =
    send (Pusher.start pusher);
    let deadline = ref (Unix.gettimeofday () +. idle_timeout_s) in
    while not (Pusher.finished pusher) do
      if Unix.gettimeofday () > !deadline then
        Error.fail
          (Error.Channel_empty
             (Printf.sprintf "Push: no server reply within %.1f s"
                idle_timeout_s));
      match Channel.recv_opt ch Channel.Server_to_client with
      | Some frame ->
          deadline := Unix.gettimeofday () +. idle_timeout_s;
          send (Pusher.on_message pusher frame)
      | None ->
          ignore
            (Fd_transport.wait_readable tr Channel.Server_to_client
               ~timeout_s:0.2)
    done;
    {
      stats = Pusher.stats pusher;
      c2s_bytes = Channel.bytes ch Channel.Client_to_server;
      s2c_bytes = Channel.bytes ch Channel.Server_to_client;
      attempts = 1;
      backoff_s = 0.0;
    }
  in
  match go () with
  | r ->
      Fd_transport.close tr;
      r
  | exception e ->
      Fd_transport.close tr;
      raise e

(* Same repair policy as {!Pull}: over a faulty link every typed
   protocol error is a link symptom and a fresh attempt is the fix;
   pushes are idempotent server-side (chunks are content-addressed,
   manifests idempotent), so a retry after a partial upload only
   re-sends what the store still lacks. *)
let retryable = function
  | Error.E _ -> true
  | Fault.Disconnected _ -> true
  | Fsync_net.Fd_transport.Closed -> true
  | Unix.Unix_error
      ( (Unix.ECONNREFUSED | Unix.ECONNRESET | Unix.EPIPE | Unix.ENOTCONN),
        _,
        _ ) ->
      true
  | _ -> false

let run ?(attempts = 3) ?fault ?(seed = 0) ?(idle_timeout_s = 30.0) ?params
    ?(scope = Scope.disabled) ?trace_id ~host ~port files =
  let attempts = max 1 attempts in
  (* One id for the whole run, same as {!Pull.run}. *)
  let trace_id =
    match trace_id with Some id -> id | None -> Trace_id.mint ()
  in
  (match Scope.registry scope with
  | Some reg ->
      Fsync_obs.Registry.set_trace reg ~trace:(Trace_id.to_hex trace_id)
        ~role:"client"
  | None -> ());
  let prng = Prng.create (Int64.of_int ((seed * 0x9e3779b1) lxor 0x7073)) in
  let backoff = ref 0.0 in
  let skip = ref [] in
  let rec go n =
    (* Files the server acknowledged in a failed attempt stay pushed
       (chunks are content-addressed, publishes per-file), so the next
       attempt skips them and pushes only the remainder. *)
    let pusher = Pusher.create ~scope ~trace_id ?params ~skip:!skip files in
    match
      attempt ?fault ~seed:(seed + n) ~idle_timeout_s ~host ~port pusher
    with
    | r -> { r with attempts = n + 1; backoff_s = !backoff }
    | exception e when retryable e && n + 1 < attempts ->
        skip := Pusher.completed_paths pusher;
        let delay = Backoff.delay_s prng ~failed:(n + 1) e in
        backoff := !backoff +. delay;
        Trace.log "push: attempt %d/%d failed (%s), retrying in %.3f s"
          (n + 1) attempts
          (match Error.of_exn e with
          | Some err -> Error.to_string err
          | None -> Printexc.to_string e)
          delay;
        Unix.sleepf delay;
        go (n + 1)
  in
  go 0
