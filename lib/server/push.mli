(** Blocking TCP push client with bounded retry (the upload mirror of
    {!Pull}).

    Connects to a {!Daemon}, wraps the socket in
    {!Fsync_net.Fd_transport} and drives a {!Pusher} to completion.
    Retry is safe mid-upload: chunks are content-addressed and the
    server's bitmap is recomputed per attempt, so a second attempt only
    re-sends what the store still lacks — and files already
    acknowledged are skipped outright via {!Pusher.completed_paths}.
    Attempts are separated by {!Backoff} delays (jittered exponential,
    or the server's own [retry-after] on {!Fsync_core.Error.Busy}). *)

type outcome = {
  stats : Pusher.stats;
  c2s_bytes : int;
  s2c_bytes : int;
  attempts : int; (** attempts consumed, [>= 1] *)
  backoff_s : float; (** total inter-attempt backoff slept *)
}

val run :
  ?attempts:int ->
  ?fault:Fsync_net.Fault.spec ->
  ?seed:int ->
  ?idle_timeout_s:float ->
  ?params:Fsync_cdc.Chunker.params ->
  ?scope:Fsync_obs.Scope.t ->
  ?trace_id:Fsync_obs.Trace_id.t ->
  host:string ->
  port:int ->
  (string * string) list ->
  outcome
(** Push the [(path, content)] tree.  Defaults: 3 attempts, no faults,
    30 s idle timeout, default chunker parameters, numeric [host].
    Raises the last failure when every attempt is spent.
    [scope] / [trace_id] behave exactly as in {!Pull.run}. *)
