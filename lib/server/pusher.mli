(** Client side of one fsyncd/1 {e push} session, as a pure message-in /
    messages-out state machine (the upload mirror of {!Puller}).

    The pusher cuts every file into content-defined chunks
    ({!Fsync_cdc.Chunker}) and, per file, offers the server the chunk
    manifest.  The server's residency bitmap ({!Msg.Chunk_need}) names
    the chunks it lacks; only those cross the wire, deflated.  A second
    bitmap for the same file is the server's one store-failure retry
    and is answered the same way.  After the last file the pusher sends
    [Push_done] and verifies the server's [Bye] root against the root
    of what it pushed — end-to-end, same as the pull direction. *)

type t

val create :
  ?scope:Fsync_obs.Scope.t ->
  ?trace_id:Fsync_obs.Trace_id.t ->
  ?params:Fsync_cdc.Chunker.params ->
  ?skip:string list ->
  (string * string) list ->
  t
(** Over the [(path, content)] tree to upload.  [trace_id] rides in
    the [Hello]; [scope] receives the client's session/phase spans
    ([session], [phase:metadata], [phase:push]) — see
    {!Session.create}.  [params] tunes the
    chunker (defaults match {!Fsync_cdc.Chunker.default_params});
    boundaries are the client's choice alone — the server only ever
    verifies hashes.  [skip] names paths a previous interrupted attempt
    already pushed to acknowledgement (DESIGN.md §12): they are dropped
    from this session and the expected [Bye] root covers only the
    files pushed now. *)

val completed_paths : t -> string list
(** Paths the server has acknowledged so far, cumulative with [skip] —
    feed this back as the next attempt's [skip] to resume a push. *)

val start : t -> string list
(** The opening frames to send ([Hello]). *)

val on_message : t -> string -> string list
(** Feed one received frame; returns encoded frames to send back.
    Raises typed {!Fsync_core.Error} values on protocol violations or
    when the final root check fails. *)

val finished : t -> bool

type stats = {
  files_pushed : int;
  chunks_total : int;   (** manifest entries offered *)
  chunks_sent : int;    (** of those, requested and uploaded *)
  bytes_sent : int;     (** raw (pre-deflate) bytes uploaded *)
  bytes_deduped : int;  (** raw bytes the server already had *)
  resumed_files : int;  (** files skipped because [skip] named them *)
}

val stats : t -> stats
