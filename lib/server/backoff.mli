(** Jittered exponential retry backoff shared by {!Pull} and {!Push}.

    Between attempts a client waits [base * 2^(failed-1)] seconds
    (capped), scaled by a deterministic jitter in [\[0.5, 1.5)] drawn
    from the caller's {!Fsync_util.Prng} — so a fleet of clients
    retrying after the same incident does not reconnect in lockstep,
    yet every run is reproducible from its seed.  A typed
    {!Fsync_core.Error.Busy} overrides the schedule: the server named
    its own delay and we honour it. *)

val base_s : float
(** First-retry delay (0.05 s, matching {!Fsync_net.Frame}). *)

val max_s : float
(** Exponential cap (2.0 s, matching {!Fsync_net.Frame}). *)

val delay_s : Fsync_util.Prng.t -> failed:int -> exn -> float
(** Delay before the next attempt after [failed] (>= 1) failures, the
    last of which raised the given exception. *)
