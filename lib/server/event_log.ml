(* Structured JSONL sink for daemon lifecycle events (DESIGN.md §9).

   Writes go through the injectable {!Fsync_store.Io} record, so the
   fault/torture harness can drive the log path through seeded
   ENOSPC/EIO schedules like any other disk write.  Logging is strictly
   best-effort: a failed write is counted, the handle is dropped (the
   next write reopens), and the daemon never notices — telemetry must
   not be able to take the data path down. *)

module Io = Fsync_store.Io
module Json = Fsync_obs.Json

type t = {
  io : Io.t;
  path : string;
  max_bytes : int; (* 0 = never rotate *)
  mutable handle : Io.handle option; (* open lazily, reopen after errors *)
  mutable size : int; (* bytes in the current file, best effort *)
  mutable errors : int;
}

let create ?(io = Io.real) ?(max_bytes = 0) path =
  (* Io has no stat; size an existing log by reading it once at startup
     so rotation picks up where the previous daemon left off. *)
  let size =
    if max_bytes > 0 && io.Io.exists path then
      match io.Io.read_file path with
      | s -> String.length s
      | exception (Unix.Unix_error _ | Sys_error _) -> 0
    else 0
  in
  { io; path; max_bytes; handle = None; size; errors = 0 }

let path t = t.path

let errors t = t.errors

let drop_handle t =
  (match t.handle with
  | Some h -> (
      try h.Io.h_close () with Unix.Unix_error _ | Sys_error _ -> ())
  | None -> ());
  t.handle <- None

(* One rotation level is enough for an operational log: [FILE] becomes
   [FILE.1] (clobbering the previous generation) and the next write
   starts a fresh file. *)
let rotate t =
  drop_handle t;
  (try t.io.Io.rename ~src:t.path ~dst:(t.path ^ ".1")
   with Unix.Unix_error _ | Sys_error _ -> t.errors <- t.errors + 1);
  t.size <- 0

let ensure_handle t =
  match t.handle with
  | Some h -> h
  | None ->
      let h = t.io.Io.open_out ~append:true t.path in
      t.handle <- Some h;
      h

let append_raw t line =
  let len = String.length line in
  if t.max_bytes > 0 && t.size > 0 && t.size + len > t.max_bytes then
    rotate t;
  match
    let h = ensure_handle t in
    h.Io.h_write line
  with
  | () -> t.size <- t.size + len
  | exception (Unix.Unix_error _ | Sys_error _) ->
      t.errors <- t.errors + 1;
      drop_handle t

let write t json = append_raw t (Json.to_string json ^ "\n")

let close t =
  (match t.handle with
  | Some h -> (
      try h.Io.h_fsync () with
      | Unix.Unix_error _ | Sys_error _ -> t.errors <- t.errors + 1)
  | None -> ());
  drop_handle t
