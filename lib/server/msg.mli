(** fsyncd/1 message codec: one tag byte plus a varint-framed body.

    The daemon and the puller exchange these over a frame transport
    ({!Conn} server-side, {!Fsync_net.Fd_transport} client-side); one
    frame carries exactly one message.  The metadata bodies ([Announce],
    [Verdict]) and the verified full-file message ([Full]) are opaque
    here — their encodings live in {!Fsync_collection.Meta_wire} so the
    daemon serves byte-identical metadata to the in-memory driver.

    Session flow:
    {v
    client                           server
      Hello            ->
                       <-  Welcome (count, root, sync parameters)
      Announce         ->
                       <-  Verdict
                       <-  File_begin (path, len, fp)   per changed file
                       <-  Hashes (level hashes)        per round
      Matched (bitmap) ->
                       <-  ... Hashes / Tail (literals)
      File_ack ok      ->
                       <-  Full (on ack failure / new files)
                       <-  Bye (collection root)
    v}

    Push flow (client uploads into a store-backed daemon; the [Hello] /
    [Welcome] opening is shared, then the first [Push_begin] selects the
    direction):
    {v
    client                           server
      Push_begin       ->               (path, len, fp, chunk manifest)
                       <-  Chunk_need (bitmap, 1 = upload it)
      Chunk_data       ->               (deflated needed chunks, in order)
                       <-  File_ack true
                        |  Chunk_need (all-ones: store let the server
                           down mid-assembly; retried at most once)
      ... per file, then:
      Push_done        ->
                       <-  Bye (root of the pushed set)
    v} *)

val version : int
(** Current protocol revision (3: [Hello] may carry a trace id and,
    after it, the swarm extension — peer id plus entry-table root
    digest, DESIGN.md §13). *)

val min_version : int
(** Oldest revision both endpoints still accept (1). *)

val version_ok : int -> bool
(** [min_version <= v <= version]. *)

val trace_bytes : int
(** Raw size of the [Hello] trace id: 16. *)

type sync_config = {
  start_block : int;  (** initial block size; both sides build the same
                          {!Fsync_core.Block_tree} from it *)
  min_block : int;    (** no split below this block size *)
  hash_bits : int;    (** truncated poly-hash width per block *)
}

val default_sync_config : sync_config
(** 2048 / 64 / 30 — mirrors the protocol defaults.  30-bit block hashes
    have no interactive verification here; collisions are caught by the
    per-file fingerprint and repaired by the [Full] fallback. *)

val validate_sync_config : sync_config -> sync_config
(** Clamp to sane bounds (hash bits 8–56, blocks ≥ 16). *)

val hash_width : sync_config -> int
(** Bytes per truncated hash on the wire. *)

type swarm_hello = {
  peer : string;  (** the initiating replica's peer id *)
  summary : Fsync_hash.Fingerprint.t;
      (** root digest of the initiator's swarm entry table
          ({!Fsync_swarm.Replica}): equal summaries short-circuit a
          gossip session to a handful of tiny frames *)
}
(** The v3 [Hello] extension that turns a session into an anti-entropy
    gossip exchange (DESIGN.md §13). *)

type t =
  | Hello of {
      version : int;
      trace : string option;
      swarm : swarm_hello option;
    }
      (** [trace] is exactly {!trace_bytes} raw bytes when present; a
          v1 peer sends none and the server mints an id of its own, so
          every session ends up traceable either way (DESIGN.md §9).
          [swarm] (v3) asks the peer for a gossip exchange instead of a
          plain pull/push session; its wire form requires a trace slot,
          so a swarm Hello without a trace carries an all-zero id. *)
  | Welcome of {
      version : int;
      file_count : int;
      root : Fsync_hash.Fingerprint.t;
      config : sync_config;
    }
  | Announce of string  (** {!Fsync_collection.Meta_wire} announce bytes *)
  | Verdict of string   (** {!Fsync_collection.Meta_wire} verdict bytes *)
  | File_begin of {
      path : string;
      new_len : int;
      fp : Fsync_hash.Fingerprint.t;
    }
  | Hashes of int array
      (** truncated level hashes, one per active block in canonical
          (ascending-offset) order — never block ids: both sides derive
          the same tree *)
  | Matched of string   (** bitmap, one bit per active block, 1 = matched *)
  | Tail of string      (** deflated literals of the unconfirmed blocks *)
  | Full of string      (** {!Fsync_collection.Meta_wire} file message *)
  | File_ack of bool    (** false asks for the [Full] fallback *)
  | Bye of { root : Fsync_hash.Fingerprint.t }
  | Error_msg of string (** typed teardown notification *)
  | Push_begin of {
      path : string;
      file_len : int;
      fp : Fsync_hash.Fingerprint.t;
      manifest : (Fsync_hash.Fingerprint.t * int) list;
          (** the file as content-defined chunks, in order: (strong
              fingerprint, length) per chunk *)
    }
  | Chunk_need of string
      (** bitmap over the manifest, 1 = the server wants that chunk *)
  | Chunk_data of string
      (** deflated concatenation of exactly the needed chunks, manifest
          order *)
  | Push_done  (** no more files; the server answers [Bye] *)
  | Resume of { root : Fsync_hash.Fingerprint.t; bitmap : string }
      (** client → server, between [Welcome] and [Announce]: the client
          holds verified content for these jobs from an interrupted
          session against the same collection [root].  The bitmap has
          one bit per announced path (announce order) followed by one
          bit per new path (path-sorted); 1 = already complete, skip it.
          Ignored if [root] no longer matches the served collection. *)
  | Busy of { retry_after_ms : int }
      (** server → client, instead of [Welcome]: the daemon is at its
          session cap; reconnect after the given delay (DESIGN.md §12) *)
  | Swarm_table of string
      (** {!Fsync_swarm.Swarm_wire} entry-table bytes: each endpoint's
          version-vector entries for the paths the recon descent found
          to differ *)
  | Swarm_recon of string
      (** one round of the split Merkle descent over the entry table
          ({!Fsync_swarm.Swarm_wire}: greeting, range queries, range
          replies) *)
  | Swarm_query of string
      (** read-repair: ask for the entry of one path ([""] = the whole
          table, for [fsync swarm status]) *)
  | Swarm_fetch of string
      (** read-repair: ask for the verified [Full] payload of a path *)
  | Swarm_end
      (** end of the sender's serving direction inside a gossip
          session; from the initiator after the push phase it asks for
          the closing [Bye] *)

val label : t -> string
(** Channel transcript label ([srv:*], plus the shared [linear:*] /
    [file:data] labels for the phases the driver also has). *)

val wire_label : string -> string
(** {!label} from the tag byte of an already-encoded frame, without
    decoding the body. *)

val encode : config:sync_config -> t -> string

val decode : config:sync_config -> string -> t
(** Raises typed {!Fsync_core.Error} values on malformed input (via the
    hardened readers); never crashes.  [config] fixes the hash width for
    [Hashes]. *)

(** {2 Shared protocol rules}

    Both endpoints mirror the same {!Fsync_core.Block_tree}; the bitmap
    order and the split-vs-tail decision are functions of public state
    only and must agree bit for bit. *)

val encode_bitmap : bool list -> string
(** One bit per active block in canonical order, MSB first. *)

val decode_bitmap : count:int -> string -> bool array
(** Inverse; the byte length must match [count] exactly. *)

val decide_next : config:sync_config -> Fsync_core.Block_tree.t -> [ `Split | `Tail ]
(** After a round's confirmations: split and hash again while blocks
    remain and the next size stays at or above [min_block], otherwise
    ship the unconfirmed bytes as deflated literals. *)
