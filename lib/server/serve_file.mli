(** The serving side of one file's transfer (the paper's recursive
    multiround protocol, server half).

    Extracted from {!Session} so the swarm gossip exchange
    ({!Fsync_swarm.Gossip}) serves files through the very same state
    machine — and therefore the very same bytes — as the daemon, in
    either direction of a gossip session.

    Message shape per file: either a verified [Full] (no old copy, or
    the file is too small to split), or [File_begin] + [Hashes] rounds
    answered by [Matched] bitmaps until the split floor, then the
    deflated [Tail] literals, then the client's [File_ack].  A false
    ack gets one verified [Full] retry before a typed
    [Verification_failed]. *)

type job = {
  path : string;      (** destination path on the receiving side *)
  content : string;
  fp : Fsync_hash.Fingerprint.t;
  has_old : bool;     (** the receiver holds an old copy to match against *)
}

type counters = {
  mutable hashes_total : int;
  mutable hashes_cached : int;
  mutable full_fallbacks : int;
  mutable rounds : int;
}
(** Shared across the files of a session; the caller owns the record. *)

val fresh_counters : unit -> counters

type t

val create :
  ?full_content:(job -> string option) ->
  ?on_fallback:(unit -> unit) ->
  who:string ->
  config:Msg.sync_config ->
  cache:Sigcache.t ->
  counters:counters ->
  job ->
  t
(** [full_content] may substitute the payload of a [Full] message (the
    daemon serves store-assembled bytes when resident); [on_fallback]
    fires when a false ack triggers the full retry.  [who] prefixes
    error messages. *)

val job : t -> job

val start : t -> Msg.t list
(** The opening messages; check {!expecting} for what must come back. *)

val on_matched : t -> string -> Msg.t list
(** Feed a [Matched] bitmap; the next [Hashes] round or the [Tail]. *)

val on_ack : t -> bool -> [ `Complete | `Replies of Msg.t list ]
(** Feed the [File_ack].  [`Complete] ends the file; [`Replies] is the
    one full-fallback retry.  Raises typed [Verification_failed] when a
    verified full transfer was rejected. *)

val expecting : t -> [ `Matched | `Ack | `Done ]
