(** Server side of one fsyncd/1 session, as a pure message-in /
    messages-out state machine.

    The machine never touches a socket: the daemon feeds it decoded
    frames via {!on_message} and writes the encoded replies it returns
    into the connection's outbox.  That keeps one slow client from
    stalling the others (the loop interleaves machines) and lets the
    tests drive the very same logic over an in-memory channel for
    byte-parity checks.

    Phases mirror the protocol: hello, announce, then one file at a
    time — hash rounds against the mirrored {!Fsync_core.Block_tree}
    until {!Msg.decide_next} says tail, then the client's ack (a failed
    ack triggers one verified [Full] fallback) — and finally [Bye] with
    the collection root.

    The first message after [Welcome] picks the direction: [Announce]
    starts a pull as above, [Push_begin] starts an upload.  A push runs
    per file: the client's chunk manifest is answered with a residency
    bitmap from the shared {!Fsync_store.Store} (everything-needed when
    the daemon has none), the uploaded chunks are hash-verified,
    assembled with the resident ones and checked against the file
    fingerprint, then persisted and published.  If the {e store} lets
    the assembly down (a chunk vanished or corrupted underneath the
    bitmap) the session re-requests every chunk once; a second failure
    — or any client-side hash mismatch — is a typed teardown. *)

type t

val create :
  ?config:Msg.sync_config ->
  ?scope:Fsync_obs.Scope.t ->
  ?trace:Fsync_obs.Scope.t ->
  ?store:Fsync_store.Store.t ->
  ?publish:(path:string -> content:string -> unit) ->
  cache:Sigcache.t ->
  (string * string) list ->
  t
(** One machine per client over the server's [(path, content)]
    collection.  [cache] is shared across sessions — that is the point
    of it.  [store] (shared too) enables push dedup and store-assembled
    full payloads; [publish] is called for every verified pushed file so
    the daemon can fold it into the served collection.

    [scope] carries daemon-wide counters shared by every session;
    [trace] is this session's {e private} registry: the machine stamps
    it with the trace id from [Hello] (role ["server"]), opens a root
    [session] span on it, and keeps exactly one [phase:*] child span
    open at a time ([phase:metadata] / [phase:hash_rounds] /
    [phase:literals] / [phase:push]), plus [store:io] spans around
    store reads and writes.  Phase spans stay open across the waits
    between messages so they tile the session span — that is what the
    coverage figure in [fsync trace report] measures. *)

val trace_id : t -> Fsync_obs.Trace_id.t option
(** Set by the [Hello]: the client's id, or one minted for a v1 peer. *)

val phase_name : t -> string
(** Live one-word label for [fsync top] / the status doc: [hello],
    [announce], [pull:rounds], [pull:ack], [push:idle], [push:chunks],
    [done] or [failed]. *)

val on_message : t -> string -> string list
(** Feed one decoded frame; returns encoded reply frames in send order.
    Raises typed {!Fsync_core.Error} values ([E]) on protocol
    violations — the daemon converts those into an [Error_msg] teardown.
    After an error the machine is {!failed} and rejects further
    input. *)

val finished : t -> bool
(** [Bye] has been emitted; the daemon may close once the outbox
    drains. *)

val failed : t -> bool

type stats = {
  hashes_total : int;   (** level hashes sent over all rounds *)
  hashes_cached : int;  (** of those, served from the signature cache *)
  full_fallbacks : int; (** failed acks repaired by a verified [Full] *)
  rounds : int;
  pushed_files : int;   (** files verified and published by pushes *)
  chunks_uploaded : int;(** manifest entries the bitmap asked for *)
  chunks_deduped : int; (** manifest entries already resident in the store *)
  resumed_jobs : int;   (** jobs skipped for a valid [Resume] bitmap *)
}

val stats : t -> stats
