(** Server side of one fsyncd/1 session, as a pure message-in /
    messages-out state machine.

    The machine never touches a socket: the daemon feeds it decoded
    frames via {!on_message} and writes the encoded replies it returns
    into the connection's outbox.  That keeps one slow client from
    stalling the others (the loop interleaves machines) and lets the
    tests drive the very same logic over an in-memory channel for
    byte-parity checks.

    Phases mirror the protocol: hello, announce, then one file at a
    time — hash rounds against the mirrored {!Fsync_core.Block_tree}
    until {!Msg.decide_next} says tail, then the client's ack (a failed
    ack triggers one verified [Full] fallback) — and finally [Bye] with
    the collection root. *)

type t

val create :
  ?config:Msg.sync_config ->
  ?scope:Fsync_obs.Scope.t ->
  cache:Sigcache.t ->
  (string * string) list ->
  t
(** One machine per client over the server's [(path, content)]
    collection.  [cache] is shared across sessions — that is the point
    of it. *)

val on_message : t -> string -> string list
(** Feed one decoded frame; returns encoded reply frames in send order.
    Raises typed {!Fsync_core.Error} values ([E]) on protocol
    violations — the daemon converts those into an [Error_msg] teardown.
    After an error the machine is {!failed} and rejects further
    input. *)

val finished : t -> bool
(** [Bye] has been emitted; the daemon may close once the outbox
    drains. *)

val failed : t -> bool

type stats = {
  hashes_total : int;   (** level hashes sent over all rounds *)
  hashes_cached : int;  (** of those, served from the signature cache *)
  full_fallbacks : int; (** failed acks repaired by a verified [Full] *)
  rounds : int;
}

val stats : t -> stats
