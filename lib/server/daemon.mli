(** The sync daemon: a single-threaded [Unix.select] event loop serving
    many fsyncd/1 sessions concurrently.

    Concurrency comes from interleaving, not threads: every connection
    owns a non-blocking {!Conn} and a {!Session} state machine, and each
    {!step} advances whichever of them have I/O ready.  A client that
    reads slowly only parks its own outbox — once it crosses the
    backpressure bound the loop stops reading from it (so the session
    produces nothing more for it) until the socket drains, while every
    other session keeps moving.

    All sessions share one {!Sigcache}, so the level hashes of a given
    file are computed once for the whole fleet of clients.

    Lifecycle: past [max_sessions] live sessions the daemon still
    accepts, but answers each excess connection with a typed [Busy]
    frame naming [busy_retry_after_s] and closes it once the frame
    drains — explicit shedding instead of letting the backlog idle out.
    A session idle longer than [session_timeout_s] gets a typed
    [Error_msg] teardown; signal handlers may call {!request_stop} (it
    only flips a flag), after which {!run} notifies unfinished sessions,
    drains for a bounded window and closes everything. *)

type t

type config = {
  sync : Msg.sync_config;
  max_sessions : int;       (** excess connections are shed with [Busy] *)
  session_timeout_s : float;
  max_outbox : int;         (** per-connection backpressure bound, bytes *)
  cache_entries : int;      (** shared signature-cache capacity *)
  busy_retry_after_s : float; (** retry-after hint carried by [Busy] *)
}

val default_config : config
(** 64 sessions, 30 s timeout, 4 MiB outbox, 1024 cache entries, 0.5 s
    busy retry-after. *)

val create :
  ?config:config ->
  ?scope:Fsync_obs.Scope.t ->
  ?store:Fsync_store.Store.t ->
  (string * string) list ->
  t
(** Serve the given [(path, content)] collection.  With [store], the
    collection is ingested (chunked, manifested) at startup, every
    session shares the store for push dedup and store-served payloads,
    and the signature cache is wired to the store's [sigs/] directory:
    vectors computed on a miss persist, and persisted vectors from a
    previous run are seeded back as warm entries — the warm-start
    protocol of DESIGN.md §11. *)

val listen : t -> host:string -> port:int -> int
(** Bind and listen on [host] (numeric, e.g. ["127.0.0.1"]) and [port];
    returns the actual port (useful with port [0]).
    @raise Unix.Unix_error on bind failure. *)

(** {2 Telemetry (DESIGN.md §9)} *)

val admin_listen : t -> host:string -> port:int -> int
(** Bind a second, admin-only listener served inside the same select
    loop; returns the actual port.  Admin connections are one-shot:
    one framed request — ["metrics"] for the Prometheus text
    exposition, ["status"] for the [fsyncd-status/1] JSON document —
    one framed reply, then close.  Anything else (an HTTP probe, an
    unknown body, an oversized header) tears down only that admin
    connection; data sessions never notice.
    @raise Unix.Unix_error on bind failure. *)

val admin_prometheus : t -> string
(** The scrape body: the registry's {!Fsync_obs.Registry.to_prometheus}
    (live gauges — [sessions_active], [uptime_s], [sigcache_hit_rate],
    store aggregates — refreshed first) when the daemon has an enabled
    scope, or a minimal exposition of the native counters when not. *)

val status_doc : t -> Fsync_obs.Json.t
(** The [fsyncd-status/1] document: uptime, served file count,
    session/sigcache/store/admin aggregates, and one entry per active
    session (peer, trace id, live phase, age, bytes). *)

val set_event_log :
  t ->
  ?io:Fsync_store.Io.t ->
  ?max_bytes:int ->
  ?slow_s:float ->
  string ->
  unit
(** Start the structured JSONL lifecycle log ({!Event_log}; best-effort,
    size-rotated at [max_bytes]): [session_start] / [session_end] /
    [session_shed] / [session_timeout] / [session_resume] /
    [daemon_stop], plus [slow_session] for sessions outliving [slow_s]
    (default: never).  [io] injects a fault-schedule filesystem for the
    torture harness. *)

val set_trace_stream : t -> ?io:Fsync_store.Io.t -> string -> unit
(** Stream every finished session's private trace registry (spans +
    per-session counters, stamped with the wire-carried trace id, role
    ["server"]) to the given JSONL file — the daemon half of what
    [fsync trace report] joins. *)

val event_log_errors : t -> int
(** Write failures absorbed by both sinks so far. *)

val add_connection : t -> Unix.file_descr -> unit
(** Register an already-connected descriptor (e.g. one end of a
    socketpair under the loopback test driver) as a new session.  The
    fd is made non-blocking and owned by the daemon from here on. *)

val step : ?timeout_s:float -> t -> unit
(** One event-loop iteration: select (default 50 ms), accept, read and
    feed sessions, flush outboxes, reap finished / failed / timed-out
    connections.  Never raises on peer misbehavior. *)

val run : ?timeout_s:float -> ?drain_s:float -> t -> unit
(** {!step} until {!request_stop}, then notify, drain (default 2 s
    budget) and {!shutdown}. *)

val request_stop : t -> unit
(** Async-signal-safe: only sets a flag read by {!run}. *)

val shutdown : t -> unit
(** Flush what can be flushed without waiting, close every connection
    and the listener. *)

val active_sessions : t -> int

val cache : t -> Sigcache.t

val store : t -> Fsync_store.Store.t option

val files : t -> (string * string) list
(** The currently served collection (pushes update it live). *)

val sigs_loaded : t -> int
(** Persisted signature vectors seeded into the cache at startup. *)

type stats = {
  accepted : int;
  completed : int;
  failed : int;
  timeouts : int;
  shed : int; (** connections answered with [Busy] at capacity *)
  sig_persist_errors : int;
      (** best-effort signature persists that failed (counted, never
          raised — DESIGN.md §12) *)
  iterations : int; (** select iterations *)
  admin_requests : int; (** admin frames answered *)
  admin_errors : int; (** admin connections torn down as hostile *)
}

val stats : t -> stats
