(** The sync daemon: a single-threaded [Unix.select] event loop serving
    many fsyncd/1 sessions concurrently.

    Concurrency comes from interleaving, not threads: every connection
    owns a non-blocking {!Conn} and a {!Session} state machine, and each
    {!step} advances whichever of them have I/O ready.  A client that
    reads slowly only parks its own outbox — once it crosses the
    backpressure bound the loop stops reading from it (so the session
    produces nothing more for it) until the socket drains, while every
    other session keeps moving.

    All sessions share one {!Sigcache}, so the level hashes of a given
    file are computed once for the whole fleet of clients.

    Lifecycle: past [max_sessions] live sessions the daemon still
    accepts, but answers each excess connection with a typed [Busy]
    frame naming [busy_retry_after_s] and closes it once the frame
    drains — explicit shedding instead of letting the backlog idle out.
    A session idle longer than [session_timeout_s] gets a typed
    [Error_msg] teardown; signal handlers may call {!request_stop} (it
    only flips a flag), after which {!run} notifies unfinished sessions,
    drains for a bounded window and closes everything. *)

type t

type config = {
  sync : Msg.sync_config;
  max_sessions : int;       (** excess connections are shed with [Busy] *)
  session_timeout_s : float;
  max_outbox : int;         (** per-connection backpressure bound, bytes *)
  cache_entries : int;      (** shared signature-cache capacity *)
  busy_retry_after_s : float; (** retry-after hint carried by [Busy] *)
}

val default_config : config
(** 64 sessions, 30 s timeout, 4 MiB outbox, 1024 cache entries, 0.5 s
    busy retry-after. *)

val create :
  ?config:config ->
  ?scope:Fsync_obs.Scope.t ->
  ?store:Fsync_store.Store.t ->
  (string * string) list ->
  t
(** Serve the given [(path, content)] collection.  With [store], the
    collection is ingested (chunked, manifested) at startup, every
    session shares the store for push dedup and store-served payloads,
    and the signature cache is wired to the store's [sigs/] directory:
    vectors computed on a miss persist, and persisted vectors from a
    previous run are seeded back as warm entries — the warm-start
    protocol of DESIGN.md §11. *)

val listen : t -> host:string -> port:int -> int
(** Bind and listen on [host] (numeric, e.g. ["127.0.0.1"]) and [port];
    returns the actual port (useful with port [0]).
    @raise Unix.Unix_error on bind failure. *)

val add_connection : t -> Unix.file_descr -> unit
(** Register an already-connected descriptor (e.g. one end of a
    socketpair under the loopback test driver) as a new session.  The
    fd is made non-blocking and owned by the daemon from here on. *)

val step : ?timeout_s:float -> t -> unit
(** One event-loop iteration: select (default 50 ms), accept, read and
    feed sessions, flush outboxes, reap finished / failed / timed-out
    connections.  Never raises on peer misbehavior. *)

val run : ?timeout_s:float -> ?drain_s:float -> t -> unit
(** {!step} until {!request_stop}, then notify, drain (default 2 s
    budget) and {!shutdown}. *)

val request_stop : t -> unit
(** Async-signal-safe: only sets a flag read by {!run}. *)

val shutdown : t -> unit
(** Flush what can be flushed without waiting, close every connection
    and the listener. *)

val active_sessions : t -> int

val cache : t -> Sigcache.t

val store : t -> Fsync_store.Store.t option

val files : t -> (string * string) list
(** The currently served collection (pushes update it live). *)

val sigs_loaded : t -> int
(** Persisted signature vectors seeded into the cache at startup. *)

type stats = {
  accepted : int;
  completed : int;
  failed : int;
  timeouts : int;
  shed : int; (** connections answered with [Busy] at capacity *)
  sig_persist_errors : int;
      (** best-effort signature persists that failed (counted, never
          raised — DESIGN.md §12) *)
  iterations : int; (** select iterations *)
}

val stats : t -> stats
