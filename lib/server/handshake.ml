module Error = Fsync_core.Error
module Trace_id = Fsync_obs.Trace_id

let hello ?trace ?swarm () =
  Msg.Hello
    { version = Msg.version; trace = Option.map Trace_id.to_raw trace; swarm }

let check_version ~who version =
  if not (Msg.version_ok version) then
    Error.malformed "%s: protocol version %d outside %d..%d" who version
      Msg.min_version Msg.version

let reject_busy ~retry_after_ms =
  Error.fail
    (Error.Busy { retry_after_s = float_of_int retry_after_ms /. 1000. })

let adopt_trace trace =
  match Option.bind trace Trace_id.of_raw with
  | Some id -> id
  | None -> Trace_id.mint ()

let welcome ~client_version ~file_count ~root ~config =
  Msg.Welcome
    {
      (* Answer at the peer's revision so an older client's equality
         check still passes. *)
      version = min client_version Msg.version;
      file_count;
      root;
      config;
    }
