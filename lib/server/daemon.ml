module Error = Fsync_core.Error
module Scope = Fsync_obs.Scope
module Trace = Fsync_net.Trace
module Store = Fsync_store.Store
module Sig_persist = Fsync_store.Sig_persist
module Chunker = Fsync_cdc.Chunker

type config = {
  sync : Msg.sync_config;
  max_sessions : int;
  session_timeout_s : float;
  max_outbox : int;
  cache_entries : int;
  busy_retry_after_s : float;
}

let default_config =
  {
    sync = Msg.default_sync_config;
    max_sessions = 64;
    session_timeout_s = 30.0;
    max_outbox = 4 * 1024 * 1024;
    cache_entries = 1024;
    busy_retry_after_s = 0.5;
  }

type client = {
  conn : Conn.t;
  session : Session.t;
  mutable last_activity : float;
  mutable failing : bool; (* teardown queued; close once the outbox drains *)
  t0 : float;
}

type t = {
  config : config;
  mutable files : (string * string) list;
  scope : Scope.t;
  cache : Sigcache.t;
  store : Store.t option;
  mutable listener : Unix.file_descr option;
  mutable clients : client list;
  mutable shedding : Conn.t list; (* over-capacity conns draining a Busy *)
  mutable stop : bool;
  mutable accepted : int;
  mutable completed : int;
  mutable failed : int;
  mutable timeouts : int;
  mutable shed : int;
  mutable iterations : int;
  sig_persist_errors : int ref;
  sigs_loaded : int;
}

(* Chunk the whole collection into the store so pull sessions can serve
   from it and push bitmaps start warm.  [put] is ref-neutral and
   [set_manifest] skips unchanged declarations, so re-ingesting the same
   collection after a restart costs no index growth and no refcount
   drift. *)
let ingest_collection store files =
  List.iter
    (fun (path, content) ->
      let fps =
        List.map
          (fun c -> Store.put store (Chunker.chunk_content content c))
          (Chunker.chunks content)
      in
      Store.set_manifest store ~path fps)
    files

let create ?(config = default_config) ?(scope = Scope.disabled) ?store files
    =
  let config = { config with sync = Msg.validate_sync_config config.sync } in
  let cache = Sigcache.create ~max_entries:config.cache_entries ~scope () in
  let sig_persist_errors = ref 0 in
  let sigs_loaded =
    match store with
    | None -> 0
    | Some s ->
        ingest_collection s files;
        (* Wire the cache to the store's sigs/ directory: misses persist
           their vectors, and whatever a previous daemon left there is
           seeded back as warm entries before the first client.  Persist
           failures stay best-effort but are counted, not swallowed. *)
        let dir = Store.sig_dir s in
        Sigcache.set_persist cache
          {
            save =
              (fun ~fp ~size ~bits hashes ->
                if not (Sig_persist.save ~dir ~fp ~size ~bits hashes) then begin
                  incr sig_persist_errors;
                  Scope.incr scope "sig_persist_errors"
                end);
          };
        Sig_persist.load_all ~dir (Sigcache.seed cache)
  in
  {
    config;
    files;
    scope;
    cache;
    store;
    listener = None;
    clients = [];
    shedding = [];
    stop = false;
    accepted = 0;
    completed = 0;
    failed = 0;
    timeouts = 0;
    shed = 0;
    iterations = 0;
    sig_persist_errors;
    sigs_loaded;
  }

let cache t = t.cache

let store t = t.store

let files t = t.files

let sigs_loaded t = t.sigs_loaded

(* A verified push replaces (or adds) the file in the served collection;
   sessions opened from now on serve the new content.  The path-sorted
   order keeps announce/verdict behavior identical to a collection
   loaded from disk. *)
let publish t ~path ~content =
  let others =
    List.filter (fun (p, _) -> not (String.equal p path)) t.files
  in
  t.files <-
    List.sort
      (fun (a, _) (b, _) -> String.compare a b)
      ((path, content) :: others)

let active_sessions t = List.length t.clients

let set_gauge t =
  Scope.set_gauge t.scope "sessions_active"
    (float_of_int (List.length t.clients))

let listen t ~host ~port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
  Unix.listen fd 16;
  Unix.set_nonblock fd;
  t.listener <- Some fd;
  match Unix.getsockname fd with
  | Unix.ADDR_INET (_, p) -> p
  | Unix.ADDR_UNIX _ -> port

let add_connection t fd =
  let conn = Conn.create ~max_outbox:t.config.max_outbox fd in
  let session =
    Session.create ~config:t.config.sync ~scope:t.scope ?store:t.store
      ~publish:(fun ~path ~content -> publish t ~path ~content)
      ~cache:t.cache t.files
  in
  let now = Unix.gettimeofday () in
  t.clients <-
    { conn; session; last_activity = now; failing = false; t0 = now }
    :: t.clients;
  t.accepted <- t.accepted + 1;
  Scope.incr t.scope "sessions_accepted";
  set_gauge t

(* Queue the typed teardown notification and let the outbox drain it;
   the connection closes on the next sweep. *)
let teardown t c err =
  if not c.failing then begin
    c.failing <- true;
    Trace.log "daemon: session teardown: %s" (Error.to_string err);
    match
      Conn.queue_msg c.conn
        (Msg.encode ~config:t.config.sync
           (Msg.Error_msg (Error.to_string err)))
    with
    | () -> ()
    | exception Error.E _ -> ()
  end

let feed_session t c frames =
  List.iter
    (fun frame ->
      if not c.failing then
        match Error.guard (fun () -> Session.on_message c.session frame) with
        | Ok replies -> List.iter (Conn.queue_msg c.conn) replies
        | Error err -> teardown t c err)
    frames

(* Over capacity the daemon still accepts, but answers with a typed
   [Busy] carrying a retry-after hint and closes once it drains —
   instead of leaving the connection parked in the listen backlog until
   the client's idle timeout fires (DESIGN.md §12). *)
let shed_connection t fd =
  let conn = Conn.create ~max_outbox:t.config.max_outbox fd in
  (match
     Conn.queue_msg conn
       (Msg.encode ~config:t.config.sync
          (Msg.Busy
             {
               retry_after_ms =
                 int_of_float (t.config.busy_retry_after_s *. 1000.0);
             }))
   with
  | () -> ()
  | exception Error.E _ -> ());
  Conn.handle_writable conn;
  t.shedding <- conn :: t.shedding;
  t.shed <- t.shed + 1;
  Scope.incr t.scope "sessions_shed"

let accept_ready t fd =
  let continue = ref true in
  while !continue && not t.stop do
    match Unix.accept fd with
    | client_fd, _ ->
        if List.length t.clients < t.config.max_sessions then
          add_connection t client_fd
        else shed_connection t client_fd
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        continue := false
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error (e, _, _) ->
        Trace.log "daemon: accept: %s" (Unix.error_message e);
        continue := false
  done

let finish t c ~ok =
  Conn.close c.conn;
  if ok then begin
    t.completed <- t.completed + 1;
    Scope.incr t.scope "sessions_completed";
    Scope.observe t.scope "session_duration_s" (Unix.gettimeofday () -. c.t0)
  end
  else begin
    t.failed <- t.failed + 1;
    Scope.incr t.scope "sessions_failed"
  end

let sweep t =
  let now = Unix.gettimeofday () in
  List.iter
    (fun c ->
      if not (Conn.closed c.conn) then
        if Conn.peer_gone c.conn then begin
          (* A write hit a dead peer: nothing more can be delivered.
             Close the fd and account the session instead of leaking
             both. *)
          if not (Session.finished c.session || c.failing) then
            Trace.log "daemon: session teardown: %s"
              (Error.to_string
                 (Error.Disconnected "Session: peer went away mid-write"));
          finish t c ~ok:(Session.finished c.session)
        end
        else begin
          (* Timeouts: one typed notification, then one more period to
             flush it before the close below reaps the connection. *)
          if
            (not c.failing)
            && (not (Session.finished c.session))
            && now -. c.last_activity > t.config.session_timeout_s
          then begin
            t.timeouts <- t.timeouts + 1;
            Scope.incr t.scope "session_timeouts";
            teardown t c
              (Error.Disconnected
                 (Printf.sprintf "Session: idle for %.1f s"
                    (now -. c.last_activity)));
            c.last_activity <- now
          end;
          if not (Conn.wants_write c.conn) then
            if Session.finished c.session then finish t c ~ok:true
            else if c.failing then finish t c ~ok:false
        end)
    t.clients;
  let before = List.length t.clients in
  t.clients <- List.filter (fun c -> not (Conn.closed c.conn)) t.clients;
  if not (Int.equal before (List.length t.clients)) then set_gauge t;
  (* Shed connections close as soon as the Busy frame is out (or the
     peer stopped caring). *)
  t.shedding <-
    List.filter
      (fun conn ->
        if Conn.closed conn then false
        else if Conn.peer_gone conn || not (Conn.wants_write conn) then begin
          Conn.close conn;
          false
        end
        else true)
      t.shedding

let step ?(timeout_s = 0.05) t =
  t.iterations <- t.iterations + 1;
  Scope.incr t.scope "select_iterations";
  let accept_fd =
    match t.listener with
    | Some fd when not t.stop -> [ fd ]
    | Some _ | None -> []
  in
  let readable =
    List.filter
      (fun c ->
        (not (Conn.closed c.conn))
        && (not (Conn.peer_gone c.conn))
        && (not c.failing)
        && not (Conn.over_backpressure c.conn))
      t.clients
  in
  let writable =
    List.filter
      (fun c -> (not (Conn.closed c.conn)) && Conn.wants_write c.conn)
      t.clients
  in
  let shed_writable =
    List.filter
      (fun conn -> (not (Conn.closed conn)) && Conn.wants_write conn)
      t.shedding
  in
  let rfds = accept_fd @ List.map (fun c -> Conn.fd c.conn) readable in
  let wfds =
    List.map (fun c -> Conn.fd c.conn) writable
    @ List.map Conn.fd shed_writable
  in
  (match Unix.select rfds wfds [] timeout_s with
  | ready_r, ready_w, _ ->
      let is_ready fds fd = List.memq fd fds in
      (match t.listener with
      | Some fd when is_ready ready_r fd -> accept_ready t fd
      | Some _ | None -> ());
      List.iter
        (fun c ->
          if is_ready ready_r (Conn.fd c.conn) then begin
            c.last_activity <- Unix.gettimeofday ();
            (* Guard: a hostile header (frame > max_frame) raises a
               typed error that must fail this session, not the loop. *)
            match Error.guard (fun () -> Conn.handle_readable c.conn) with
            | Error err -> teardown t c err
            | Ok `Eof ->
                (* The peer already closed: an Error_msg could never
                   reach it, so skip the teardown queueing and just
                   account the session. *)
                if not (Session.finished c.session) then
                  Trace.log "daemon: session teardown: %s"
                    (Error.to_string
                       (Error.Disconnected "Session: peer went away"));
                finish t c ~ok:(Session.finished c.session)
            | Ok (`Msgs (frames, eof)) ->
                feed_session t c frames;
                if eof && not (Session.finished c.session) then begin
                  Trace.log "daemon: session teardown: %s"
                    (Error.to_string
                       (Error.Disconnected "Session: peer went away"));
                  finish t c ~ok:false
                end
          end)
        readable;
      List.iter
        (fun c ->
          if is_ready ready_w (Conn.fd c.conn) then
            Conn.handle_writable c.conn)
        writable;
      List.iter
        (fun conn ->
          if is_ready ready_w (Conn.fd conn) then Conn.handle_writable conn)
        shed_writable
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  | exception Unix.Unix_error (Unix.EBADF, _, _) ->
      (* A peer vanished between the sweep and the select; the next
         sweep reaps it. *)
      ());
  sweep t

let request_stop t = t.stop <- true

let shutdown t =
  List.iter
    (fun c ->
      if not (Conn.closed c.conn) then begin
        Conn.handle_writable c.conn;
        Conn.close c.conn;
        finish t c ~ok:(Session.finished c.session)
      end)
    t.clients;
  t.clients <- [];
  List.iter Conn.close t.shedding;
  t.shedding <- [];
  set_gauge t;
  (match t.listener with
  | Some fd -> (
      t.listener <- None;
      match Unix.close fd with
      | () -> ()
      | exception Unix.Unix_error _ -> ())
  | None -> ());
  Trace.log "daemon: shut down after %d sessions (%d completed, %d failed)"
    t.accepted t.completed t.failed

let run ?(timeout_s = 0.05) ?(drain_s = 2.0) t =
  while not t.stop do
    step ~timeout_s t
  done;
  (* Stop requested: notify every unfinished session, give the outboxes
     a bounded drain window, then close whatever remains. *)
  List.iter
    (fun c ->
      if not (Session.finished c.session) then
        teardown t c (Error.Disconnected "Session: server shutting down"))
    t.clients;
  let deadline = Unix.gettimeofday () +. drain_s in
  while
    (match t.clients with [] -> false | _ :: _ -> true)
    && Unix.gettimeofday () < deadline
  do
    step ~timeout_s:0.02 t
  done;
  shutdown t

type stats = {
  accepted : int;
  completed : int;
  failed : int;
  timeouts : int;
  shed : int;
  sig_persist_errors : int;
  iterations : int;
}

let stats (t : t) =
  {
    accepted = t.accepted;
    completed = t.completed;
    failed = t.failed;
    timeouts = t.timeouts;
    shed = t.shed;
    sig_persist_errors = !(t.sig_persist_errors);
    iterations = t.iterations;
  }
