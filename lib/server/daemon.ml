module Error = Fsync_core.Error
module Scope = Fsync_obs.Scope
module Registry = Fsync_obs.Registry
module Json = Fsync_obs.Json
module Trace_id = Fsync_obs.Trace_id
module Monotonic = Fsync_obs.Monotonic
module Trace = Fsync_net.Trace
module Store = Fsync_store.Store
module Sig_persist = Fsync_store.Sig_persist
module Chunker = Fsync_cdc.Chunker

type config = {
  sync : Msg.sync_config;
  max_sessions : int;
  session_timeout_s : float;
  max_outbox : int;
  cache_entries : int;
  busy_retry_after_s : float;
}

let default_config =
  {
    sync = Msg.default_sync_config;
    max_sessions = 64;
    session_timeout_s = 30.0;
    max_outbox = 4 * 1024 * 1024;
    cache_entries = 1024;
    busy_retry_after_s = 0.5;
  }

type client = {
  conn : Conn.t;
  session : Session.t;
  peer : string; (* "host:port" at accept time, for events and status *)
  treg : Fsync_obs.Registry.t option; (* per-session trace registry *)
  mutable last_activity : float;
  mutable failing : bool; (* teardown queued; close once the outbox drains *)
  t0 : float;
}

(* One-shot admin connection: one request frame in, one reply frame
   out, closed once the outbox drains.  Same framed {!Conn} as the data
   plane, so a hostile peer (an HTTP probe, say) dies of the same typed
   oversized-header error — and takes down only itself. *)
type admin_conn = { a_conn : Conn.t; mutable a_done : bool }

type t = {
  config : config;
  mutable files : (string * string) list;
  scope : Scope.t;
  cache : Sigcache.t;
  store : Store.t option;
  mutable listener : Unix.file_descr option;
  mutable admin_listener : Unix.file_descr option;
  mutable clients : client list;
  mutable admin : admin_conn list;
  mutable shedding : Conn.t list; (* over-capacity conns draining a Busy *)
  mutable event_log : Event_log.t option;
  mutable trace_stream : Event_log.t option; (* per-session span dumps *)
  mutable slow_session_s : float; (* infinity = no slow-session events *)
  mutable stop : bool;
  mutable accepted : int;
  mutable completed : int;
  mutable failed : int;
  mutable timeouts : int;
  mutable shed : int;
  mutable iterations : int;
  mutable admin_requests : int;
  mutable admin_errors : int;
  sig_persist_errors : int ref;
  sigs_loaded : int;
  t0 : float;
}

(* Chunk the whole collection into the store so pull sessions can serve
   from it and push bitmaps start warm.  [put] is ref-neutral and
   [set_manifest] skips unchanged declarations, so re-ingesting the same
   collection after a restart costs no index growth and no refcount
   drift. *)
let ingest_collection store files =
  List.iter
    (fun (path, content) ->
      let fps =
        List.map
          (fun c -> Store.put store (Chunker.chunk_content content c))
          (Chunker.chunks content)
      in
      Store.set_manifest store ~path fps)
    files

let create ?(config = default_config) ?(scope = Scope.disabled) ?store files
    =
  let config = { config with sync = Msg.validate_sync_config config.sync } in
  let cache = Sigcache.create ~max_entries:config.cache_entries ~scope () in
  let sig_persist_errors = ref 0 in
  let sigs_loaded =
    match store with
    | None -> 0
    | Some s ->
        ingest_collection s files;
        (* Wire the cache to the store's sigs/ directory: misses persist
           their vectors, and whatever a previous daemon left there is
           seeded back as warm entries before the first client.  Persist
           failures stay best-effort but are counted, not swallowed. *)
        let dir = Store.sig_dir s in
        Sigcache.set_persist cache
          {
            save =
              (fun ~fp ~size ~bits hashes ->
                if not (Sig_persist.save ~dir ~fp ~size ~bits hashes) then begin
                  incr sig_persist_errors;
                  Scope.incr scope "sig_persist_errors"
                end);
          };
        Sig_persist.load_all ~dir (Sigcache.seed cache)
  in
  Scope.add scope "sigs_loaded" sigs_loaded;
  {
    config;
    files;
    scope;
    cache;
    store;
    listener = None;
    admin_listener = None;
    clients = [];
    admin = [];
    shedding = [];
    event_log = None;
    trace_stream = None;
    slow_session_s = infinity;
    stop = false;
    accepted = 0;
    completed = 0;
    failed = 0;
    timeouts = 0;
    shed = 0;
    iterations = 0;
    admin_requests = 0;
    admin_errors = 0;
    sig_persist_errors;
    sigs_loaded;
    t0 = Monotonic.now ();
  }

let cache t = t.cache

let store t = t.store

let files t = t.files

let sigs_loaded t = t.sigs_loaded

(* A verified push replaces (or adds) the file in the served collection;
   sessions opened from now on serve the new content.  The path-sorted
   order keeps announce/verdict behavior identical to a collection
   loaded from disk. *)
let publish t ~path ~content =
  let others =
    List.filter (fun (p, _) -> not (String.equal p path)) t.files
  in
  t.files <-
    List.sort
      (fun (a, _) (b, _) -> String.compare a b)
      ((path, content) :: others)

let active_sessions t = List.length t.clients

let set_gauge t =
  Scope.set_gauge t.scope "sessions_active"
    (float_of_int (List.length t.clients))

(* ---- telemetry sinks (DESIGN.md §9) ---- *)

let set_event_log t ?io ?max_bytes ?(slow_s = infinity) path =
  t.event_log <- Some (Event_log.create ?io ?max_bytes path);
  t.slow_session_s <- slow_s

let set_trace_stream t ?io path =
  t.trace_stream <- Some (Event_log.create ?io path)

let event_log_errors t =
  (match t.event_log with Some s -> Event_log.errors s | None -> 0)
  + match t.trace_stream with Some s -> Event_log.errors s | None -> 0

(* Lifecycle events are JSONL, one object per line, timestamped with
   the wall clock (they are for humans and cross-host joins; durations
   inside them come from the monotonic clock). *)
let emit_event t kind fields =
  match t.event_log with
  | None -> ()
  | Some sink ->
      Event_log.write sink
        (Json.Obj
           (("event", Json.String kind)
           :: ("ts", Json.Float (Unix.gettimeofday ()))
           :: fields))

let json_trace c =
  match Session.trace_id c.session with
  | Some id -> Json.String (Trace_id.to_hex id)
  | None -> Json.Null

let bind_listener ~host ~port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
  Unix.listen fd 16;
  Unix.set_nonblock fd;
  let bound =
    match Unix.getsockname fd with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> port
  in
  (fd, bound)

let listen t ~host ~port =
  let fd, bound = bind_listener ~host ~port in
  t.listener <- Some fd;
  bound

let admin_listen t ~host ~port =
  let fd, bound = bind_listener ~host ~port in
  t.admin_listener <- Some fd;
  bound

let peer_name fd =
  match Unix.getpeername fd with
  | Unix.ADDR_INET (addr, port) ->
      Printf.sprintf "%s:%d" (Unix.string_of_inet_addr addr) port
  | Unix.ADDR_UNIX p -> if String.equal p "" then "local" else p
  | exception Unix.Unix_error _ -> "unknown"

let add_connection t fd =
  let peer = peer_name fd in
  let conn = Conn.create ~max_outbox:t.config.max_outbox fd in
  (* Sessions only pay for span bookkeeping when the daemon streams
     traces; counters always go to the shared scope. *)
  let treg =
    match t.trace_stream with
    | Some _ -> Some (Registry.create ())
    | None -> None
  in
  let trace =
    match treg with
    | Some reg -> Scope.of_registry reg
    | None -> Scope.disabled
  in
  let session =
    Session.create ~config:t.config.sync ~scope:t.scope ~trace ?store:t.store
      ~publish:(fun ~path ~content -> publish t ~path ~content)
      ~cache:t.cache t.files
  in
  let now = Monotonic.now () in
  t.clients <-
    { conn; session; peer; treg; last_activity = now; failing = false;
      t0 = now }
    :: t.clients;
  t.accepted <- t.accepted + 1;
  Scope.incr t.scope "sessions_accepted";
  emit_event t "session_start" [ ("peer", Json.String peer) ];
  set_gauge t

(* Queue the typed teardown notification and let the outbox drain it;
   the connection closes on the next sweep. *)
let teardown t c err =
  if not c.failing then begin
    c.failing <- true;
    Trace.log "daemon: session teardown: %s" (Error.to_string err);
    match
      Conn.queue_msg c.conn
        (Msg.encode ~config:t.config.sync
           (Msg.Error_msg (Error.to_string err)))
    with
    | () -> ()
    | exception Error.E _ -> ()
  end

let feed_session t c frames =
  List.iter
    (fun frame ->
      if not c.failing then
        match Error.guard (fun () -> Session.on_message c.session frame) with
        | Ok replies -> List.iter (Conn.queue_msg c.conn) replies
        | Error err -> teardown t c err)
    frames

(* Over capacity the daemon still accepts, but answers with a typed
   [Busy] carrying a retry-after hint and closes once it drains —
   instead of leaving the connection parked in the listen backlog until
   the client's idle timeout fires (DESIGN.md §12). *)
let shed_connection t fd =
  let conn = Conn.create ~max_outbox:t.config.max_outbox fd in
  (match
     Conn.queue_msg conn
       (Msg.encode ~config:t.config.sync
          (Msg.Busy
             {
               retry_after_ms =
                 int_of_float (t.config.busy_retry_after_s *. 1000.0);
             }))
   with
  | () -> ()
  | exception Error.E _ -> ());
  Conn.handle_writable conn;
  t.shedding <- conn :: t.shedding;
  t.shed <- t.shed + 1;
  Scope.incr t.scope "sessions_shed";
  emit_event t "session_shed"
    [
      ("peer", Json.String (peer_name (Conn.fd conn)));
      ("retry_after_ms",
       Json.Int (int_of_float (t.config.busy_retry_after_s *. 1000.0)));
    ]

let accept_ready t ~admit fd =
  let continue = ref true in
  while !continue && not t.stop do
    match Unix.accept fd with
    | client_fd, _ -> admit t client_fd
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        continue := false
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error (e, _, _) ->
        Trace.log "daemon: accept: %s" (Unix.error_message e);
        continue := false
  done

let admit_client t fd =
  if List.length t.clients < t.config.max_sessions then add_connection t fd
  else shed_connection t fd

let admit_admin t fd =
  t.admin <-
    { a_conn = Conn.create ~max_outbox:t.config.max_outbox fd; a_done = false }
    :: t.admin

let finish t c ~ok =
  Conn.close c.conn;
  let duration_s = Monotonic.now () -. c.t0 in
  let stats = Session.stats c.session in
  if ok then begin
    t.completed <- t.completed + 1;
    Scope.incr t.scope "sessions_completed";
    Scope.observe t.scope "session_duration_s" duration_s
  end
  else begin
    t.failed <- t.failed + 1;
    Scope.incr t.scope "sessions_failed"
  end;
  if stats.resumed_jobs > 0 then
    emit_event t "session_resume"
      [
        ("peer", Json.String c.peer);
        ("trace", json_trace c);
        ("files_skipped", Json.Int stats.resumed_jobs);
      ];
  if duration_s > t.slow_session_s then
    emit_event t "slow_session"
      [
        ("peer", Json.String c.peer);
        ("trace", json_trace c);
        ("duration_s", Json.Float duration_s);
        ("threshold_s", Json.Float t.slow_session_s);
      ];
  emit_event t "session_end"
    [
      ("peer", Json.String c.peer);
      ("trace", json_trace c);
      ("ok", Json.Bool ok);
      ("phase", Json.String (Session.phase_name c.session));
      ("duration_s", Json.Float duration_s);
      ("bytes_in", Json.Int (Conn.bytes_in c.conn));
      ("bytes_out", Json.Int (Conn.bytes_out c.conn));
      ("rounds", Json.Int stats.rounds);
      ("files_pushed", Json.Int stats.pushed_files);
      ("full_fallbacks", Json.Int stats.full_fallbacks);
    ];
  (* The session's private trace registry (spans + per-session byte
     counters) streams out as one JSONL block, already stamped with the
     trace id and role by the session's Hello handling. *)
  match (t.trace_stream, c.treg) with
  | Some sink, Some reg ->
      Registry.add reg "bytes_in" (Conn.bytes_in c.conn);
      Registry.add reg "bytes_out" (Conn.bytes_out c.conn);
      Registry.add reg "rounds" stats.rounds;
      Registry.add reg "hashes_total" stats.hashes_total;
      Registry.add reg "hashes_cached" stats.hashes_cached;
      Event_log.append_raw sink (Registry.to_jsonl reg)
  | _ -> ()

let sweep t =
  let now = Monotonic.now () in
  List.iter
    (fun c ->
      if not (Conn.closed c.conn) then
        if Conn.peer_gone c.conn then begin
          (* A write hit a dead peer: nothing more can be delivered.
             Close the fd and account the session instead of leaking
             both. *)
          if not (Session.finished c.session || c.failing) then
            Trace.log "daemon: session teardown: %s"
              (Error.to_string
                 (Error.Disconnected "Session: peer went away mid-write"));
          finish t c ~ok:(Session.finished c.session)
        end
        else begin
          (* Timeouts: one typed notification, then one more period to
             flush it before the close below reaps the connection. *)
          if
            (not c.failing)
            && (not (Session.finished c.session))
            && now -. c.last_activity > t.config.session_timeout_s
          then begin
            t.timeouts <- t.timeouts + 1;
            Scope.incr t.scope "session_timeouts";
            emit_event t "session_timeout"
              [
                ("peer", Json.String c.peer);
                ("trace", json_trace c);
                ("idle_s", Json.Float (now -. c.last_activity));
              ];
            teardown t c
              (Error.Disconnected
                 (Printf.sprintf "Session: idle for %.1f s"
                    (now -. c.last_activity)));
            c.last_activity <- now
          end;
          if not (Conn.wants_write c.conn) then
            if Session.finished c.session then finish t c ~ok:true
            else if c.failing then finish t c ~ok:false
        end)
    t.clients;
  let before = List.length t.clients in
  t.clients <- List.filter (fun c -> not (Conn.closed c.conn)) t.clients;
  if not (Int.equal before (List.length t.clients)) then set_gauge t;
  (* Shed connections close as soon as the Busy frame is out (or the
     peer stopped caring). *)
  t.shedding <-
    List.filter
      (fun conn ->
        if Conn.closed conn then false
        else if Conn.peer_gone conn || not (Conn.wants_write conn) then begin
          Conn.close conn;
          false
        end
        else true)
      t.shedding;
  (* Admin conns live for exactly one answered request. *)
  t.admin <-
    List.filter
      (fun a ->
        if Conn.closed a.a_conn then false
        else if
          Conn.peer_gone a.a_conn
          || (a.a_done && not (Conn.wants_write a.a_conn))
        then begin
          Conn.close a.a_conn;
          false
        end
        else true)
      t.admin

(* ---- admin plane: one-shot "metrics" / "status" requests ---- *)

(* Live values that exist outside the registry (list lengths, cache and
   store aggregates) are mirrored into it as gauges just before a dump,
   so every scrape reflects the instant it was taken.  Names are chosen
   not to collide with any counter the sessions maintain. *)
let refresh_registry t reg =
  Registry.set_gauge reg "sessions_active"
    (float_of_int (List.length t.clients));
  Registry.set_gauge reg "uptime_s" (Monotonic.now () -. t.t0);
  Registry.set_gauge reg "sigcache_hit_rate" (Sigcache.hit_rate t.cache);
  Registry.set_gauge reg "event_log_errors"
    (float_of_int (event_log_errors t));
  match t.store with
  | Some store ->
      let s = Store.stats store in
      Registry.set_gauge reg "store_chunks" (float_of_int s.Store.chunks);
      Registry.set_gauge reg "store_bytes" (float_of_int s.Store.bytes);
      Registry.set_gauge reg "store_manifests"
        (float_of_int s.Store.manifests)
  | None -> ()

(* Without [--metrics] the daemon has no registry; a scrape still works,
   answered from the native counters alone. *)
let native_prometheus t =
  let b = Buffer.create 512 in
  let metric kind name value =
    Buffer.add_string b
      (Printf.sprintf "# HELP fsync_%s fsync daemon %s\n# TYPE fsync_%s %s\nfsync_%s %s\n"
         name
         (String.map (fun c -> if Char.equal c '_' then ' ' else c) name)
         name kind name value)
  in
  metric "gauge" "sessions_active"
    (string_of_int (List.length t.clients));
  metric "gauge" "uptime_s" (Printf.sprintf "%g" (Monotonic.now () -. t.t0));
  metric "counter" "sessions_accepted" (string_of_int t.accepted);
  metric "counter" "sessions_completed" (string_of_int t.completed);
  metric "counter" "sessions_failed" (string_of_int t.failed);
  metric "counter" "session_timeouts" (string_of_int t.timeouts);
  metric "counter" "sessions_shed" (string_of_int t.shed);
  metric "counter" "select_iterations" (string_of_int t.iterations);
  metric "counter" "admin_requests" (string_of_int t.admin_requests);
  metric "counter" "sig_persist_errors"
    (string_of_int !(t.sig_persist_errors));
  metric "counter" "sigs_loaded" (string_of_int t.sigs_loaded);
  metric "gauge" "sigcache_hit_rate"
    (Printf.sprintf "%g" (Sigcache.hit_rate t.cache));
  Buffer.contents b

let admin_prometheus t =
  match Scope.registry t.scope with
  | Some reg ->
      refresh_registry t reg;
      Registry.to_prometheus reg
  | None -> native_prometheus t

let status_doc t =
  let now = Monotonic.now () in
  let cs = Sigcache.stats t.cache in
  Json.Obj
    [
      ("schema", Json.String "fsyncd-status/1");
      ("uptime_s", Json.Float (now -. t.t0));
      ("files", Json.Int (List.length t.files));
      ( "sessions",
        Json.Obj
          [
            ("active", Json.Int (List.length t.clients));
            ("accepted", Json.Int t.accepted);
            ("completed", Json.Int t.completed);
            ("failed", Json.Int t.failed);
            ("timeouts", Json.Int t.timeouts);
            ("shed", Json.Int t.shed);
          ] );
      ("select_iterations", Json.Int t.iterations);
      ( "sigcache",
        Json.Obj
          [
            ("hits", Json.Int cs.Sigcache.hits);
            ("misses", Json.Int cs.Sigcache.misses);
            ("entries", Json.Int cs.Sigcache.entries);
            ("evictions", Json.Int cs.Sigcache.evictions);
            ("warmed", Json.Int cs.Sigcache.warmed);
            ("hit_rate", Json.Float (Sigcache.hit_rate t.cache));
            ("loaded", Json.Int t.sigs_loaded);
            ("persist_errors", Json.Int !(t.sig_persist_errors));
          ] );
      ( "store",
        match t.store with
        | None -> Json.Null
        | Some store ->
            let s = Store.stats store in
            Json.Obj
              [
                ("chunks", Json.Int s.Store.chunks);
                ("bytes", Json.Int s.Store.bytes);
                ("manifests", Json.Int s.Store.manifests);
                ("puts", Json.Int s.Store.puts);
                ("dedup_puts", Json.Int s.Store.dedup_puts);
                ("bytes_deduped", Json.Int s.Store.bytes_deduped);
              ] );
      ( "admin",
        Json.Obj
          [
            ("requests", Json.Int t.admin_requests);
            ("errors", Json.Int t.admin_errors);
          ] );
      ( "event_log",
        match t.event_log with
        | None -> Json.Null
        | Some sink ->
            Json.Obj
              [
                ("path", Json.String (Event_log.path sink));
                ("errors", Json.Int (Event_log.errors sink));
              ] );
      ( "active_sessions",
        Json.List
          (List.map
             (fun c ->
               Json.Obj
                 [
                   ("peer", Json.String c.peer);
                   ("trace", json_trace c);
                   ("phase", Json.String (Session.phase_name c.session));
                   ("age_s", Json.Float (now -. c.t0));
                   ("idle_s", Json.Float (now -. c.last_activity));
                   ("bytes_in", Json.Int (Conn.bytes_in c.conn));
                   ("bytes_out", Json.Int (Conn.bytes_out c.conn));
                 ])
             t.clients) );
    ]

let admin_reply t a frame =
  t.admin_requests <- t.admin_requests + 1;
  Scope.incr t.scope "admin_requests";
  let body =
    match frame with
    | "metrics" -> admin_prometheus t
    | "status" -> Json.to_string (status_doc t)
    | other -> Error.malformed "Daemon: unknown admin request %S" other
  in
  Conn.queue_msg a.a_conn body;
  a.a_done <- true

(* Anything hostile or malformed on the admin plane — an HTTP probe's
   "GET " reading as a giant frame header, an unknown request — costs
   exactly that connection, never the loop or a data session. *)
let admin_fail t a err =
  t.admin_errors <- t.admin_errors + 1;
  Scope.incr t.scope "admin_errors";
  Trace.log "daemon: admin teardown: %s" (Error.to_string err);
  Conn.close a.a_conn

let feed_admin t a frames =
  List.iter
    (fun frame ->
      if (not a.a_done) && not (Conn.closed a.a_conn) then
        match Error.guard (fun () -> admin_reply t a frame) with
        | Ok () -> ()
        | Error err -> admin_fail t a err)
    frames

let step ?(timeout_s = 0.05) t =
  t.iterations <- t.iterations + 1;
  Scope.incr t.scope "select_iterations";
  let accept_fd =
    match t.listener with
    | Some fd when not t.stop -> [ fd ]
    | Some _ | None -> []
  in
  let admin_accept_fd =
    match t.admin_listener with
    | Some fd when not t.stop -> [ fd ]
    | Some _ | None -> []
  in
  let admin_readable =
    List.filter
      (fun a ->
        (not (Conn.closed a.a_conn))
        && (not (Conn.peer_gone a.a_conn))
        && not a.a_done)
      t.admin
  in
  let admin_writable =
    List.filter
      (fun a -> (not (Conn.closed a.a_conn)) && Conn.wants_write a.a_conn)
      t.admin
  in
  let readable =
    List.filter
      (fun c ->
        (not (Conn.closed c.conn))
        && (not (Conn.peer_gone c.conn))
        && (not c.failing)
        && not (Conn.over_backpressure c.conn))
      t.clients
  in
  let writable =
    List.filter
      (fun c -> (not (Conn.closed c.conn)) && Conn.wants_write c.conn)
      t.clients
  in
  let shed_writable =
    List.filter
      (fun conn -> (not (Conn.closed conn)) && Conn.wants_write conn)
      t.shedding
  in
  let rfds =
    accept_fd @ admin_accept_fd
    @ List.map (fun c -> Conn.fd c.conn) readable
    @ List.map (fun a -> Conn.fd a.a_conn) admin_readable
  in
  let wfds =
    List.map (fun c -> Conn.fd c.conn) writable
    @ List.map (fun a -> Conn.fd a.a_conn) admin_writable
    @ List.map Conn.fd shed_writable
  in
  (match Unix.select rfds wfds [] timeout_s with
  | ready_r, ready_w, _ ->
      let is_ready fds fd = List.memq fd fds in
      (match t.listener with
      | Some fd when is_ready ready_r fd ->
          accept_ready t ~admit:admit_client fd
      | Some _ | None -> ());
      (match t.admin_listener with
      | Some fd when is_ready ready_r fd ->
          accept_ready t ~admit:admit_admin fd
      | Some _ | None -> ());
      List.iter
        (fun a ->
          if is_ready ready_r (Conn.fd a.a_conn) then
            match Error.guard (fun () -> Conn.handle_readable a.a_conn) with
            | Error err -> admin_fail t a err
            | Ok `Eof -> Conn.close a.a_conn
            | Ok (`Msgs (frames, _eof)) -> feed_admin t a frames)
        admin_readable;
      List.iter
        (fun a ->
          if is_ready ready_w (Conn.fd a.a_conn) then
            Conn.handle_writable a.a_conn)
        admin_writable;
      List.iter
        (fun c ->
          if is_ready ready_r (Conn.fd c.conn) then begin
            c.last_activity <- Monotonic.now ();
            (* Guard: a hostile header (frame > max_frame) raises a
               typed error that must fail this session, not the loop. *)
            match Error.guard (fun () -> Conn.handle_readable c.conn) with
            | Error err -> teardown t c err
            | Ok `Eof ->
                (* The peer already closed: an Error_msg could never
                   reach it, so skip the teardown queueing and just
                   account the session. *)
                if not (Session.finished c.session) then
                  Trace.log "daemon: session teardown: %s"
                    (Error.to_string
                       (Error.Disconnected "Session: peer went away"));
                finish t c ~ok:(Session.finished c.session)
            | Ok (`Msgs (frames, eof)) ->
                feed_session t c frames;
                if eof && not (Session.finished c.session) then begin
                  Trace.log "daemon: session teardown: %s"
                    (Error.to_string
                       (Error.Disconnected "Session: peer went away"));
                  finish t c ~ok:false
                end
          end)
        readable;
      List.iter
        (fun c ->
          if is_ready ready_w (Conn.fd c.conn) then
            Conn.handle_writable c.conn)
        writable;
      List.iter
        (fun conn ->
          if is_ready ready_w (Conn.fd conn) then Conn.handle_writable conn)
        shed_writable
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  | exception Unix.Unix_error (Unix.EBADF, _, _) ->
      (* A peer vanished between the sweep and the select; the next
         sweep reaps it. *)
      ());
  sweep t

let request_stop t = t.stop <- true

let shutdown t =
  List.iter
    (fun c ->
      if not (Conn.closed c.conn) then begin
        Conn.handle_writable c.conn;
        Conn.close c.conn;
        finish t c ~ok:(Session.finished c.session)
      end)
    t.clients;
  t.clients <- [];
  List.iter Conn.close t.shedding;
  t.shedding <- [];
  List.iter
    (fun a ->
      Conn.handle_writable a.a_conn;
      Conn.close a.a_conn)
    t.admin;
  t.admin <- [];
  set_gauge t;
  let close_listener l =
    match l with
    | Some fd -> (
        match Unix.close fd with
        | () -> ()
        | exception Unix.Unix_error _ -> ())
    | None -> ()
  in
  close_listener t.listener;
  t.listener <- None;
  close_listener t.admin_listener;
  t.admin_listener <- None;
  emit_event t "daemon_stop"
    [
      ("accepted", Json.Int t.accepted);
      ("completed", Json.Int t.completed);
      ("failed", Json.Int t.failed);
      ("uptime_s", Json.Float (Monotonic.now () -. t.t0));
    ];
  (match t.event_log with Some s -> Event_log.close s | None -> ());
  (match t.trace_stream with Some s -> Event_log.close s | None -> ());
  Trace.log "daemon: shut down after %d sessions (%d completed, %d failed)"
    t.accepted t.completed t.failed

let run ?(timeout_s = 0.05) ?(drain_s = 2.0) t =
  while not t.stop do
    step ~timeout_s t
  done;
  (* Stop requested: notify every unfinished session, give the outboxes
     a bounded drain window, then close whatever remains. *)
  List.iter
    (fun c ->
      if not (Session.finished c.session) then
        teardown t c (Error.Disconnected "Session: server shutting down"))
    t.clients;
  let deadline = Monotonic.now () +. drain_s in
  while
    (match t.clients with [] -> false | _ :: _ -> true)
    && Monotonic.now () < deadline
  do
    step ~timeout_s:0.02 t
  done;
  shutdown t

type stats = {
  accepted : int;
  completed : int;
  failed : int;
  timeouts : int;
  shed : int;
  sig_persist_errors : int;
  iterations : int;
  admin_requests : int;
  admin_errors : int;
}

let stats (t : t) =
  {
    accepted = t.accepted;
    completed = t.completed;
    failed = t.failed;
    timeouts = t.timeouts;
    shed = t.shed;
    sig_persist_errors = !(t.sig_persist_errors);
    iterations = t.iterations;
    admin_requests = t.admin_requests;
    admin_errors = t.admin_errors;
  }
