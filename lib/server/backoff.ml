module Prng = Fsync_util.Prng
module Error = Fsync_core.Error

let base_s = 0.05

let max_s = 2.0

let delay_s prng ~failed e =
  match Error.of_exn e with
  | Some (Error.Busy { retry_after_s }) -> retry_after_s
  | Some _ | None ->
      let exp_s =
        Float.min (base_s *. (2.0 ** float_of_int (failed - 1))) max_s
      in
      exp_s *. (0.5 +. Prng.float prng 1.0)
