(** Deterministic single-process drivers for the daemon and the puller.

    [run_pulls] wires N clients to a {!Daemon} over socketpairs and
    pumps everything round-robin in one thread: one {!Daemon.step}, then
    one frame per client, repeat.  Interleaving is therefore exercised
    for real — all sessions are mid-flight in the same loop — while the
    schedule stays reproducible.  [run_in_memory] runs the same two
    state machines over a plain in-memory {!Fsync_net.Channel}; because
    transport framing is the only difference, it is the byte-for-byte
    reference the socket path is compared against in tests. *)

type pull_result = {
  files : (string * string) list; (** the synchronized replica *)
  stats : Puller.stats;
  c2s_bytes : int;
      (** accounted bytes, client to server: payload only over the
          in-memory channel, payload plus the 4-byte frame header per
          message over a transport *)
  s2c_bytes : int;
  c2s_msgs : int;    (** accounted messages per direction — subtracting
                         [4 * msgs] from a transport run's bytes
                         recovers the payload for parity checks *)
  s2c_msgs : int;
  roundtrips : int;
}

val run_pulls :
  ?max_iterations:int ->
  ?prepare:(int -> Fsync_net.Channel.t -> unit) ->
  daemon:Daemon.t ->
  (string * string) list list ->
  pull_result list
(** One pull per listed replica, all concurrent against [daemon].
    [prepare i ch] runs before client [i]'s first frame — the place to
    attach {!Fsync_net.Fault} schedules to its transport channel.
    Raises a typed error if the system stalls ([max_iterations],
    default 1e6, bounds the pump loop). *)

type push_result = {
  pusher : Pusher.stats;
  up_bytes : int;   (** accounted client-to-server bytes (incl. framing) *)
  down_bytes : int;
}

val run_pushes :
  ?max_iterations:int ->
  ?params:Fsync_cdc.Chunker.params ->
  daemon:Daemon.t ->
  (string * string) list list ->
  push_result list
(** One push per listed tree, all concurrent against [daemon] — the
    upload mirror of {!run_pulls}.  Call it once per client instead to
    let each push see the chunks its predecessors stored (that is how
    the dedup benchmarks measure the second client's saving). *)

val run_in_memory :
  ?config:Msg.sync_config ->
  ?scope:Fsync_obs.Scope.t ->
  cache:Sigcache.t ->
  server:(string * string) list ->
  client:(string * string) list ->
  unit ->
  pull_result * Session.stats
(** The reference run: same machines, no file descriptors. *)
