(** The shared fsyncd/1 session opening.

    {!Puller}, {!Pusher} and the swarm gossip initiator all open a
    session the same way (Hello, then Welcome-or-Busy), and {!Session}
    plus the swarm peer answer it the same way — the logic lives here
    once so a protocol revision cannot update one consumer and miss the
    others. *)

val hello :
  ?trace:Fsync_obs.Trace_id.t -> ?swarm:Msg.swarm_hello -> unit -> Msg.t
(** The client's opening message, always at the current {!Msg.version}. *)

val check_version : who:string -> int -> unit
(** Validate a peer's announced revision against
    [Msg.min_version..Msg.version]; raises a typed [Malformed] naming
    [who] otherwise. *)

val reject_busy : retry_after_ms:int -> 'a
(** Raise the typed {!Fsync_core.Error.Busy} a [Busy] answer maps to. *)

val adopt_trace : string option -> Fsync_obs.Trace_id.t
(** The server side of trace propagation: adopt the id carried by the
    Hello, or mint one for a v1 peer that sent none (DESIGN.md §9). *)

val welcome :
  client_version:int ->
  file_count:int ->
  root:Fsync_hash.Fingerprint.t ->
  config:Msg.sync_config ->
  Msg.t
(** The server's answer, capped at the client's revision so an older
    peer's version equality check still passes. *)
