(** Merge trace-tagged JSONL event streams into per-session reports.

    The back end of [fsync trace report]: feed it every line of the
    client's [--trace-json] file and the daemon's per-session stream,
    and events group by their ["trace"] id into one {!session} each —
    client and server spans side by side, aggregated into a per-phase
    latency breakdown ([phase:*] spans plus [store:io]) and a coverage
    figure (the share of [session]-span wall time accounted for by
    phase spans, worst role).

    Tolerant of partial traces: a span with a null end time (crashed or
    still-running session) is read as running until its stream's last
    event, and a near-zero session duration reports coverage 1.0
    instead of dividing by nothing. *)

type phase = {
  p_role : string;
  p_name : string;  (** ["phase:..."] or ["store:io"] *)
  p_total_s : float;
  p_spans : int;
}

type session = {
  trace : string;  (** hex trace id; [""] groups untagged events *)
  roles : string list;
  wall_s : float;  (** time under ["session"] spans, max over roles *)
  phases : phase list;
  counters : (string * string * int) list;  (** (role, name, value) *)
  coverage : float;  (** phase-time / session-time, worst role, in [0,1] *)
}

val of_events : Json.t list -> session list
(** Group parsed events by trace id, in first-seen order. *)

val of_lines : string list -> (session list, string) result
(** Parse JSONL lines (blank lines skipped) and report; [Error] names
    the first malformed line. *)

val pp : Format.formatter -> session -> unit
