(* Merge trace-tagged JSONL event streams into per-session phase
   breakdowns.

   The client's [--trace-json FILE] and the daemon's per-session stream
   both emit {!Registry.to_jsonl} lines stamped with the same trace id
   (carried by the protocol [Hello]); feeding every line from both
   files here groups them back into one session per trace id, with one
   row per (role, phase).  Everything is computed from the span events
   alone, so partial traces (a crashed session's spans export with null
   end times) still produce a report instead of an error. *)

type phase = {
  p_role : string;
  p_name : string;
  p_total_s : float;
  p_spans : int;
}

type session = {
  trace : string; (* hex id; "" groups untagged events *)
  roles : string list;
  wall_s : float; (* total time under "session" spans, max over roles *)
  phases : phase list;
  counters : (string * string * int) list; (* (role, name, value) *)
  coverage : float; (* worst-role phase-time / session-time, in [0,1] *)
}

type raw_span = { s_name : string; s_start : float; s_end : float option }

let epsilon = 1e-9

let str_field name ev =
  match Option.bind (Json.member name ev) Json.to_string_opt with
  | Some s -> s
  | None -> ""

let float_field name ev = Option.bind (Json.member name ev) Json.to_float_opt

(* A span's effective end: its own, or the latest end seen in its
   group (an open span in a crashed trace is read as running until the
   group's last event), or its own start when nothing ever closed. *)
let span_end ~group_end s =
  match s.s_end with Some e -> e | None -> max s.s_start group_end

let is_phase name =
  String.length name >= 6 && String.equal (String.sub name 0 6) "phase:"

let group_by key items =
  let order = ref [] in
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun item ->
      let k = key item in
      match Hashtbl.find_opt tbl k with
      | Some r -> r := item :: !r
      | None ->
          order := k :: !order;
          Hashtbl.replace tbl k (ref [ item ]))
    items;
  List.rev_map (fun k -> (k, List.rev !(Hashtbl.find tbl k))) !order

let role_report role events =
  let spans =
    List.filter_map
      (fun ev ->
        match str_field "type" ev with
        | "span" -> (
            match float_field "start_s" ev with
            | None -> None
            | Some s_start ->
                Some
                  {
                    s_name = str_field "name" ev;
                    s_start;
                    s_end = float_field "end_s" ev;
                  })
        | _ -> None)
      events
  in
  let counters =
    List.filter_map
      (fun ev ->
        match str_field "type" ev with
        | "counter" -> (
            match
              Option.bind (Json.member "value" ev) Json.to_int_opt
            with
            | Some v -> Some (role, str_field "name" ev, v)
            | None -> None)
        | _ -> None)
      events
  in
  let group_end =
    List.fold_left
      (fun acc s ->
        max acc (match s.s_end with Some e -> e | None -> s.s_start))
      neg_infinity spans
  in
  (* Session time: the sum over "session" root spans (a retried run
     appends one per attempt).  Traces from code that opened no session
     span fall back to the overall event extent. *)
  let dur s = max 0.0 (span_end ~group_end s -. s.s_start) in
  let session_spans =
    List.filter (fun s -> String.equal s.s_name "session") spans
  in
  let session_s =
    match session_spans with
    | _ :: _ -> List.fold_left (fun acc s -> acc +. dur s) 0.0 session_spans
    | [] -> (
        match spans with
        | [] -> 0.0
        | _ :: _ ->
            let start =
              List.fold_left (fun acc s -> min acc s.s_start) infinity spans
            in
            max 0.0 (group_end -. start))
  in
  let phases =
    group_by
      (fun s -> s.s_name)
      (List.filter
         (fun s -> is_phase s.s_name || String.equal s.s_name "store:io")
         spans)
    |> List.map (fun (name, ss) ->
           {
             p_role = role;
             p_name = name;
             p_total_s = List.fold_left (fun acc s -> acc +. dur s) 0.0 ss;
             p_spans = List.length ss;
           })
  in
  let phase_s =
    List.fold_left
      (fun acc p -> if is_phase p.p_name then acc +. p.p_total_s else acc)
      0.0 phases
  in
  let coverage =
    if session_s < epsilon then 1.0 else min 1.0 (phase_s /. session_s)
  in
  (phases, counters, session_s, coverage)

let of_events events =
  group_by (str_field "trace") events
  |> List.map (fun (trace, evs) ->
         let per_role =
           group_by (str_field "role") evs
           |> List.map (fun (role, revs) -> (role, role_report role revs))
         in
         {
           trace;
           roles = List.map fst per_role;
           wall_s =
             List.fold_left
               (fun acc (_, (_, _, s, _)) -> max acc s)
               0.0 per_role;
           phases = List.concat_map (fun (_, (ps, _, _, _)) -> ps) per_role;
           counters = List.concat_map (fun (_, (_, cs, _, _)) -> cs) per_role;
           coverage =
             List.fold_left
               (fun acc (_, (_, _, _, c)) -> min acc c)
               1.0 per_role;
         })

let of_lines lines =
  let rec parse i acc = function
    | [] -> Ok (of_events (List.rev acc))
    | line :: rest -> (
        match String.trim line with
        | "" -> parse (i + 1) acc rest
        | line -> (
            match Json.parse line with
            | Ok ev -> parse (i + 1) (ev :: acc) rest
            | Error e -> Error (Printf.sprintf "line %d: %s" i e)))
  in
  parse 1 [] lines

let pp ppf s =
  let id = if String.equal s.trace "" then "(untagged)" else s.trace in
  Format.fprintf ppf "@[<v>trace %s  roles: %s@ " id
    (String.concat ", "
       (List.map (fun r -> if String.equal r "" then "?" else r) s.roles));
  Format.fprintf ppf "  wall %.6f s, phase coverage %.1f%%" s.wall_s
    (100.0 *. s.coverage);
  let width =
    List.fold_left (fun w p -> max w (String.length p.p_name)) 0 s.phases
  in
  List.iter
    (fun p ->
      Format.fprintf ppf "@   %-8s %-*s %10.6f s%s" p.p_role width p.p_name
        p.p_total_s
        (if s.wall_s > epsilon && is_phase p.p_name then
           Printf.sprintf "  %5.1f%%" (100.0 *. p.p_total_s /. s.wall_s)
         else ""))
    s.phases;
  List.iter
    (fun (role, grouped) ->
      Format.fprintf ppf "@   %-8s %s" role
        (String.concat ", "
           (List.map
              (fun (_, name, v) -> Printf.sprintf "%s=%d" name v)
              grouped)))
    (group_by (fun (role, _, _) -> role) s.counters
    |> List.map (fun (role, cs) -> (role, cs)));
  Format.fprintf ppf "@]"
