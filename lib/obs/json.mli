(** Minimal JSON writer + strict reader.

    Zero-dependency support for the observability exporters
    ({!Registry.to_jsonl}) and the machine-readable bench trajectory
    files ([BENCH_*.json]).  Not a general-purpose JSON library: no
    streaming, no surrogate pairs, numbers limited to what
    [int_of_string] / [float_of_string] accept — exactly the dialect the
    exporters emit, which the reader round-trips. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (single-line) serialization.  [Float] values that are whole
    numbers print with a trailing [.0] so they stay floats on re-read;
    NaN/infinity degrade to [null]. *)

val parse : string -> (t, string) result
(** Strict parse of a complete JSON document; trailing bytes are an
    error.  Whole-number literals come back as [Int], everything else
    numeric as [Float]. *)

(** {2 Accessors} *)

val member : string -> t -> t option
(** Object field lookup; [None] on missing key or non-object. *)

val to_float_opt : t -> float option
(** [Int] and [Float] both read as floats. *)

val to_int_opt : t -> int option
val to_string_opt : t -> string option
val to_list_opt : t -> t list option
