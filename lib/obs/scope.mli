(** The observability handle protocol code threads.

    Every instrumented entry point takes [?scope] defaulting to
    {!disabled}.  A disabled scope is a contract, not a convention:
    every counter/gauge/span operation on it is a single constructor
    match — no allocation, no table lookup — so instrumentation on hot
    paths (per block, per group test, per frame) is free unless the
    caller opted in.

    [timed] takes a closure and therefore allocates at the call site
    even when disabled; reserve it for phase-granularity spans and use
    {!enter}/{!leave} where allocation matters. *)

type t

val disabled : t
(** The no-op scope; the default everywhere. *)

val of_registry : Registry.t -> t

val is_enabled : t -> bool
(** Guard for instrumentation whose argument is itself costly to build
    (e.g. a [Printf.sprintf] span name). *)

val registry : t -> Registry.t option

val incr : t -> string -> unit
val add : t -> string -> int -> unit
val set_gauge : t -> string -> float -> unit
val observe : t -> string -> float -> unit

val enter : t -> string -> int
(** Open a span; returns an id ([-1] when disabled — {!leave} accepts
    it). *)

val leave : t -> int -> unit

val timed : t -> string -> (unit -> 'a) -> 'a
(** [with_span] through the scope; runs [f] bare when disabled. *)
