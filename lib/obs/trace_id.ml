(* A trace id is 16 opaque bytes, minted client-side and carried in
   [Hello] so both endpoints of one fsyncd/1 session stamp their events
   with the same value.  Collision resistance only needs to cover the
   sessions one daemon ever sees; digesting time, pid and a process
   counter is ample and avoids seeding global [Random] state. *)

type t = string

let size = 16

let counter = ref 0

let mint () =
  incr counter;
  Digest.string
    (Printf.sprintf "fsync-trace:%.9f:%d:%d"
       (Unix.gettimeofday ())
       (Unix.getpid ())
       !counter)

let of_raw s = if Int.equal (String.length s) size then Some s else None

let to_raw t = t

let to_hex = Digest.to_hex

let hex_val c =
  match c with
  | '0' .. '9' -> Some (Char.code c - Char.code '0')
  | 'a' .. 'f' -> Some (Char.code c - Char.code 'a' + 10)
  | 'A' .. 'F' -> Some (Char.code c - Char.code 'A' + 10)
  | _ -> None

let of_hex s =
  if not (Int.equal (String.length s) (2 * size)) then None
  else
    let b = Bytes.create size in
    let ok = ref true in
    for i = 0 to size - 1 do
      match (hex_val s.[2 * i], hex_val s.[(2 * i) + 1]) with
      | Some hi, Some lo -> Bytes.set b i (Char.chr ((hi lsl 4) lor lo))
      | _ -> ok := false
    done;
    if !ok then Some (Bytes.to_string b) else None

let equal = String.equal
