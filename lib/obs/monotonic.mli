(** Non-decreasing clock over [Unix.gettimeofday].

    The stdlib exposes no [CLOCK_MONOTONIC]; this is the portable
    approximation: a wall-clock read clamped so successive calls never
    go backwards.  Span timing and [session_duration_s] use it so an
    NTP step mid-session cannot produce a negative duration (DESIGN.md
    §9); tests keep injecting their own deterministic clocks through
    the existing [?clock] seams. *)

val now : unit -> float
(** The shared process-wide clamped clock. *)

val wrap : (unit -> float) -> unit -> float
(** [wrap base] is an independent clamped clock over [base] — what
    tests use to check the clamp against a rigged base clock. *)
