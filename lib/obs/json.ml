(* Minimal JSON: just enough for the exporters and the bench trajectory
   files.  Writer + strict recursive-descent reader; no external
   dependencies (the toolchain image has no yojson).  Numbers are kept
   as [Float] on read (ints round-trip exactly up to 2^53, far beyond
   any byte count the bench emits); [Int] exists on the write side so
   counters print without a decimal point. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ---- writer ---- *)

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let rec write_to buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
      if Float.is_integer f && Float.abs f < 1e15 then
        Buffer.add_string buf (Printf.sprintf "%.1f" f)
      else if Float.is_nan f || Float.abs f = Float.infinity then
        (* JSON has no NaN/inf; null is the conventional degradation. *)
        Buffer.add_string buf "null"
      else Buffer.add_string buf (Printf.sprintf "%.17g" f)
  | String s -> escape_to buf s
  | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          write_to buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_to buf k;
          Buffer.add_char buf ':';
          write_to buf v)
        kvs;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  write_to buf v;
  Buffer.contents buf

(* ---- reader ---- *)

type cursor = { s : string; mutable pos : int }

let error c fmt =
  Printf.ksprintf (fun m -> raise (Failure (Printf.sprintf "Json.parse at %d: %s" c.pos m))) fmt

let peek c = if c.pos < String.length c.s then Some c.s.[c.pos] else None

let skip_ws c =
  while
    c.pos < String.length c.s
    && (match c.s.[c.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
  do
    c.pos <- c.pos + 1
  done

let expect c ch =
  match peek c with
  | Some got when Char.equal got ch -> c.pos <- c.pos + 1
  | Some got -> error c "expected %C, got %C" ch got
  | None -> error c "expected %C, got end of input" ch

let parse_literal c lit v =
  let n = String.length lit in
  if c.pos + n <= String.length c.s && String.equal (String.sub c.s c.pos n) lit
  then begin
    c.pos <- c.pos + n;
    v
  end
  else error c "bad literal (wanted %s)" lit

let parse_string c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec go () =
    if c.pos >= String.length c.s then error c "unterminated string";
    let ch = c.s.[c.pos] in
    c.pos <- c.pos + 1;
    match ch with
    | '"' -> Buffer.contents buf
    | '\\' ->
        if c.pos >= String.length c.s then error c "unterminated escape";
        let e = c.s.[c.pos] in
        c.pos <- c.pos + 1;
        (match e with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'u' ->
            if c.pos + 4 > String.length c.s then error c "truncated \\u escape";
            let hex = String.sub c.s c.pos 4 in
            c.pos <- c.pos + 4;
            let code =
              match int_of_string_opt ("0x" ^ hex) with
              | Some v -> v
              | None -> error c "bad \\u escape %S" hex
            in
            (* Exporters only emit control-character escapes; decode the
               BMP code point as UTF-8. *)
            if code < 0x80 then Buffer.add_char buf (Char.chr code)
            else if code < 0x800 then begin
              Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
            end
            else begin
              Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
              Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
            end
        | e -> error c "bad escape \\%C" e);
        go ()
    | c when Char.code c < 0x20 -> Buffer.add_char buf c; go ()
    | ch -> Buffer.add_char buf ch; go ()
  in
  go ()

let parse_number c =
  let start = c.pos in
  let is_num ch =
    match ch with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while c.pos < String.length c.s && is_num c.s.[c.pos] do
    c.pos <- c.pos + 1
  done;
  let lit = String.sub c.s start (c.pos - start) in
  match int_of_string_opt lit with
  | Some i -> Int i
  | None -> (
      match float_of_string_opt lit with
      | Some f -> Float f
      | None -> error c "bad number %S" lit)

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> error c "unexpected end of input"
  | Some '"' -> String (parse_string c)
  | Some 't' -> parse_literal c "true" (Bool true)
  | Some 'f' -> parse_literal c "false" (Bool false)
  | Some 'n' -> parse_literal c "null" Null
  | Some '[' ->
      expect c '[';
      skip_ws c;
      if peek c = Some ']' then begin
        c.pos <- c.pos + 1;
        List []
      end
      else begin
        let items = ref [ parse_value c ] in
        skip_ws c;
        while peek c = Some ',' do
          c.pos <- c.pos + 1;
          items := parse_value c :: !items;
          skip_ws c
        done;
        expect c ']';
        List (List.rev !items)
      end
  | Some '{' ->
      expect c '{';
      skip_ws c;
      if peek c = Some '}' then begin
        c.pos <- c.pos + 1;
        Obj []
      end
      else begin
        let member () =
          skip_ws c;
          let k = parse_string c in
          skip_ws c;
          expect c ':';
          let v = parse_value c in
          (k, v)
        in
        let items = ref [ member () ] in
        skip_ws c;
        while peek c = Some ',' do
          c.pos <- c.pos + 1;
          items := member () :: !items;
          skip_ws c
        done;
        expect c '}';
        Obj (List.rev !items)
      end
  | Some _ -> parse_number c

let parse s =
  let c = { s; pos = 0 } in
  match parse_value c with
  | v ->
      skip_ws c;
      if c.pos <> String.length s then Error (Printf.sprintf "Json.parse: trailing bytes at %d" c.pos)
      else Ok v
  | exception Failure m -> Error m

(* ---- accessors ---- *)

let member key = function
  | Obj kvs -> List.assoc_opt key kvs
  | _ -> None

let to_float_opt = function
  | Int i -> Some (float_of_int i)
  | Float f -> Some f
  | _ -> None

let to_int_opt = function
  | Int i -> Some i
  | Float f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let to_string_opt = function String s -> Some s | _ -> None

let to_list_opt = function List xs -> Some xs | _ -> None
