module Stats = Fsync_util.Stats

(* A span is one timed, named interval with parent nesting — protocol
   phases, merkle descents, per-file transfers.  [t1 < 0] marks a span
   still open (exported with a null end time, so a crashed run's partial
   trace is still parseable). *)
type span = {
  id : int;
  parent : int; (* -1 = root *)
  name : string;
  t0 : float;
  mutable t1 : float;
}

type t = {
  clock : unit -> float;
  origin : float;
  counters : (string, int ref) Hashtbl.t;
  gauges : (string, float ref) Hashtbl.t;
  hists : (string, float list ref) Hashtbl.t;
  mutable spans : span list; (* creation order, reversed *)
  mutable open_stack : span list; (* innermost first *)
  mutable next_span : int;
  mutable tag : (string * string) option; (* (trace id hex, role) *)
}

let create ?clock () =
  let clock = match clock with Some c -> c | None -> Monotonic.now in
  {
    clock;
    origin = clock ();
    counters = Hashtbl.create 32;
    gauges = Hashtbl.create 8;
    hists = Hashtbl.create 8;
    spans = [];
    open_stack = [];
    next_span = 0;
    tag = None;
  }

(* ---- trace tagging ---- *)

(* One daemon appends many sessions' events to the same JSONL stream;
   stamping every event (not just the meta header) keeps each line
   self-describing, so a report can group a mixed file without carrying
   parser state between lines. *)
let set_trace t ~trace ~role = t.tag <- Some (trace, role)

let trace_tag t = t.tag

(* ---- counters / gauges / histograms ---- *)

let add t name n =
  match Hashtbl.find_opt t.counters name with
  | Some r -> r := !r + n
  | None -> Hashtbl.replace t.counters name (ref n)

let incr t name = add t name 1

let counter t name =
  match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0

let set_gauge t name v =
  match Hashtbl.find_opt t.gauges name with
  | Some r -> r := v
  | None -> Hashtbl.replace t.gauges name (ref v)

let gauge t name =
  match Hashtbl.find_opt t.gauges name with Some r -> Some !r | None -> None

let observe t name v =
  match Hashtbl.find_opt t.hists name with
  | Some r -> r := v :: !r
  | None -> Hashtbl.replace t.hists name (ref [ v ])

let histogram t name =
  match Hashtbl.find_opt t.hists name with
  | Some r -> List.rev !r
  | None -> []

let sorted_bindings tbl read =
  Hashtbl.fold (fun k v acc -> (k, read v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let counters t = sorted_bindings t.counters (fun r -> !r)
let gauges t = sorted_bindings t.gauges (fun r -> !r)
let histograms t = sorted_bindings t.hists (fun r -> Stats.summarize_opt (List.rev !r))

(* ---- spans ---- *)

let span_enter t name =
  let id = t.next_span in
  t.next_span <- id + 1;
  let parent = match t.open_stack with [] -> -1 | s :: _ -> s.id in
  let s = { id; parent; name; t0 = t.clock (); t1 = -1.0 } in
  t.spans <- s :: t.spans;
  t.open_stack <- s :: t.open_stack;
  id

let span_exit t id =
  (* Close the identified span; any nested span left open above it (a
     driver bailing out of a phase through an exception) is closed at
     the same instant so the trace stays well-nested. *)
  let now = t.clock () in
  let rec pop = function
    | [] -> []
    | s :: rest ->
        if s.t1 < 0.0 then s.t1 <- now;
        if Int.equal s.id id then rest else pop rest
  in
  if List.exists (fun s -> Int.equal s.id id) t.open_stack then
    t.open_stack <- pop t.open_stack

let with_span t name f =
  let id = span_enter t name in
  Fun.protect ~finally:(fun () -> span_exit t id) f

let spans t = List.rev t.spans

let span_count t = t.next_span

(* ---- exporters ---- *)

(* Prometheus metric names allow [a-zA-Z0-9_:]; span and histogram names
   in this code base use ':' and '-' freely, so sanitize. *)
let prom_name name =
  let b = Bytes.of_string name in
  Bytes.iteri
    (fun i c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> ()
      | _ -> Bytes.set b i '_')
    b;
  "fsync_" ^ Bytes.to_string b

let jsonl_events t =
  let tagged fields =
    match t.tag with
    | None -> Json.Obj fields
    | Some (trace, role) ->
        Json.Obj
          (match fields with
          | ty :: rest ->
              ty :: ("trace", Json.String trace)
              :: ("role", Json.String role) :: rest
          | [] -> [ ("trace", Json.String trace); ("role", Json.String role) ])
  in
  let meta =
    tagged
      [
        ("type", Json.String "meta");
        ("origin_s", Json.Float t.origin);
        ("spans", Json.Int (span_count t));
      ]
  in
  let span_events =
    List.map
      (fun s ->
        tagged
          [
            ("type", Json.String "span");
            ("id", Json.Int s.id);
            ("parent", if s.parent < 0 then Json.Null else Json.Int s.parent);
            ("name", Json.String s.name);
            ("start_s", Json.Float (s.t0 -. t.origin));
            ( "end_s",
              if s.t1 < 0.0 then Json.Null else Json.Float (s.t1 -. t.origin) );
            ( "dur_s",
              if s.t1 < 0.0 then Json.Null else Json.Float (s.t1 -. s.t0) );
          ])
      (spans t)
  in
  let counter_events =
    List.map
      (fun (name, v) ->
        tagged
          [
            ("type", Json.String "counter");
            ("name", Json.String name);
            ("value", Json.Int v);
          ])
      (counters t)
  in
  let gauge_events =
    List.map
      (fun (name, v) ->
        tagged
          [
            ("type", Json.String "gauge");
            ("name", Json.String name);
            ("value", Json.Float v);
          ])
      (gauges t)
  in
  let hist_events =
    List.filter_map
      (fun (name, summary) ->
        match summary with
        | None -> None
        | Some (s : Stats.summary) ->
            Some
              (tagged
                 [
                   ("type", Json.String "histogram");
                   ("name", Json.String name);
                   ("count", Json.Int s.count);
                   ("sum", Json.Float s.total);
                   ("mean", Json.Float s.mean);
                   ("min", Json.Float s.min);
                   ("max", Json.Float s.max);
                   ("p50", Json.Float s.p50);
                   ("p90", Json.Float s.p90);
                   ("p99", Json.Float s.p99);
                 ]))
      (histograms t)
  in
  (meta :: span_events) @ counter_events @ gauge_events @ hist_events

let to_jsonl t =
  let buf = Buffer.create 1024 in
  List.iter
    (fun ev ->
      Buffer.add_string buf (Json.to_string ev);
      Buffer.add_char buf '\n')
    (jsonl_events t);
  Buffer.contents buf

(* Default histogram bucket bounds, in the unit the observation was
   made in (seconds for the duration histograms).  A scraper only sees
   cumulative buckets, so the raw observation lists kept per histogram
   are binned at export time — no bucket state to maintain on the hot
   observe path. *)
let default_buckets =
  [
    0.001; 0.0025; 0.005; 0.01; 0.025; 0.05; 0.1; 0.25; 0.5; 1.0; 2.5; 5.0;
    10.0; 30.0; 60.0;
  ]

(* Shortest decimal that still round-trips: bucket bounds like 0.0025
   must not scrape as 0.0025000000000000001. *)
let prom_float v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.1f" v
  else if Float.is_nan v || Float.abs v = Float.infinity then
    Json.to_string (Json.Float v)
  else
    let s = Printf.sprintf "%.12g" v in
    if float_of_string s = v then s else Printf.sprintf "%.17g" v

let to_prometheus t =
  let buf = Buffer.create 1024 in
  let header p kind =
    Buffer.add_string buf
      (Printf.sprintf "# HELP %s fsync %s %s\n# TYPE %s %s\n" p kind p p kind)
  in
  List.iter
    (fun (name, v) ->
      let p = prom_name name in
      header p "counter";
      Buffer.add_string buf (Printf.sprintf "%s %d\n" p v))
    (counters t);
  List.iter
    (fun (name, v) ->
      let p = prom_name name in
      header p "gauge";
      Buffer.add_string buf (Printf.sprintf "%s %s\n" p (prom_float v)))
    (gauges t);
  (* Real cumulative histogram series (_bucket/_sum/_count), binned from
     the raw observations — what a Prometheus scraper can aggregate,
     unlike the pre-quantiled summary this used to emit. *)
  List.iter
    (fun (name, obs) ->
      match obs with
      | [] -> ()
      | obs ->
          let p = prom_name name in
          header p "histogram";
          let count = List.length obs in
          let sum = List.fold_left ( +. ) 0.0 obs in
          List.iter
            (fun le ->
              let n = List.length (List.filter (fun v -> v <= le) obs) in
              Buffer.add_string buf
                (Printf.sprintf "%s_bucket{le=\"%s\"} %d\n" p (prom_float le)
                   n))
            default_buckets;
          Buffer.add_string buf
            (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n%s_sum %s\n%s_count %d\n"
               p count p (prom_float sum) p count))
    (sorted_bindings t.hists (fun r -> List.rev !r));
  (* Per-name span aggregates: how long each phase took in total. *)
  let agg = Hashtbl.create 16 in
  List.iter
    (fun s ->
      if s.t1 >= 0.0 then begin
        let count, sum =
          match Hashtbl.find_opt agg s.name with Some v -> v | None -> (0, 0.0)
        in
        Hashtbl.replace agg s.name (count + 1, sum +. (s.t1 -. s.t0))
      end)
    t.spans;
  List.iter
    (fun (name, (count, sum)) ->
      let p = prom_name ("span_" ^ name ^ "_seconds") in
      header p "summary";
      Buffer.add_string buf
        (Printf.sprintf "%s_sum %s\n%s_count %d\n" p (prom_float sum) p count))
    (sorted_bindings agg (fun v -> v));
  Buffer.contents buf

let pp_table ppf t =
  let rows = ref [] in
  List.iter (fun (n, v) -> rows := (n, string_of_int v) :: !rows) (counters t);
  List.iter (fun (n, v) -> rows := (n, Printf.sprintf "%.3f" v) :: !rows) (gauges t);
  List.iter
    (fun (n, s) ->
      match s with
      | None -> ()
      | Some (s : Stats.summary) ->
          rows :=
            ( n,
              Printf.sprintf "n=%d mean=%.1f p50=%.1f p99=%.1f" s.count s.mean
                s.p50 s.p99 )
            :: !rows)
    (histograms t);
  let rows = List.rev !rows in
  let width =
    List.fold_left (fun w (n, _) -> max w (String.length n)) 0 rows
  in
  Format.fprintf ppf "@[<v>";
  List.iteri
    (fun i (n, v) ->
      if i > 0 then Format.fprintf ppf "@ ";
      Format.fprintf ppf "%-*s  %s" width n v)
    rows;
  Format.fprintf ppf "@]"
