(** Metric registry: counters, gauges, histograms, and structured spans.

    The quantitative backbone of the paper is bytes / rounds / hash
    budgets per protocol phase; this registry gives every layer a place
    to put those numbers so one run can be dissected after the fact.
    Protocol code never holds a registry directly — it threads a
    {!Scope.t}, which is either disabled (free) or backed by one of
    these.

    {b Canonical metric names} (see DESIGN.md §9 for the full registry):
    counters [weak_candidates_found], [weak_candidates_confirmed],
    [group_tests_total], [group_tests_passed], [group_tests_failed],
    [salvage_retries], [salvage_recoveries], [cont_accepts],
    [cont_rejects], [liar_search_rounds], [oneway_blocks_total],
    [oneway_blocks_matched], [merkle_leaves_built],
    [merkle_nodes_visited],
    [recon_rounds], [recon_widened], [recon_fallbacks], [frame_naks],
    [frame_retransmits], [frame_bad], [frame_dups],
    [protocol_fallbacks], [ladder_fallbacks], [session_resumes],
    [channel_messages], [channel_bytes_c2s], [channel_bytes_s2c];
    histograms [file_bytes_sent], [round_hashes]. *)

type t

type span = {
  id : int;
  parent : int;  (** -1 for a root span *)
  name : string;
  t0 : float;
  mutable t1 : float;  (** negative while the span is still open *)
}

val create : ?clock:(unit -> float) -> unit -> t
(** Fresh registry.  [clock] defaults to {!Monotonic.now} (wall clock
    clamped non-decreasing, so span and duration math survives clock
    steps); tests inject a deterministic clock. *)

val set_trace : t -> trace:string -> role:string -> unit
(** Stamp every exported event with a trace id (hex) and a role
    (["client"] / ["server"]).  This is how one session's client and
    daemon event streams stay joinable by [fsync trace report]. *)

val trace_tag : t -> (string * string) option
(** The [(trace, role)] set by {!set_trace}, if any. *)

(** {2 Counters, gauges, histograms} *)

val incr : t -> string -> unit
val add : t -> string -> int -> unit
val counter : t -> string -> int
(** 0 for a counter never touched. *)

val set_gauge : t -> string -> float -> unit
val gauge : t -> string -> float option

val observe : t -> string -> float -> unit
val histogram : t -> string -> float list
(** Raw observations in insertion order. *)

val counters : t -> (string * int) list
(** Sorted by name. *)

val gauges : t -> (string * float) list
val histograms : t -> (string * Fsync_util.Stats.summary option) list
(** Summaries via {!Fsync_util.Stats.summarize_opt}; [None] never occurs
    for a histogram that received at least one observation. *)

(** {2 Spans} *)

val span_enter : t -> string -> int
(** Open a span nested under the innermost currently-open span; returns
    its id. *)

val span_exit : t -> int -> unit
(** Close the identified span.  Nested spans left open above it are
    closed at the same instant so the trace stays well-nested; an
    unknown id is ignored. *)

val with_span : t -> string -> (unit -> 'a) -> 'a
(** [span_enter]/[span_exit] around [f], exception-safe. *)

val spans : t -> span list
(** All spans in creation order (open ones included). *)

val span_count : t -> int

(** {2 Exporters} *)

val jsonl_events : t -> Json.t list
(** One event per line of {!to_jsonl}: a [meta] header, then [span],
    [counter], [gauge] and [histogram] events.  When {!set_trace} was
    called, every event carries ["trace"] and ["role"] fields. *)

val to_jsonl : t -> string
(** JSONL event stream — what [--trace-json FILE] writes. *)

val to_prometheus : t -> string
(** Scrape-grade Prometheus text exposition: [# HELP] / [# TYPE] lines
    for every series; counters and gauges as-is; histograms as real
    cumulative [_bucket{le="..."}] series (default bounds 1 ms – 60 s
    plus [+Inf]) with [_sum] / [_count]; and per-name span time
    aggregates as summaries.  Metric names are prefixed [fsync_] and
    sanitized to [[a-zA-Z0-9_]]. *)

val pp_table : Format.formatter -> t -> unit
(** Human-readable name/value table (folded into the driver summary
    under [--metrics]). *)
