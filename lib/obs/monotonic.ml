(* The paper's accounting is all durations — span latencies,
   [session_duration_s] — and wall clocks jump: NTP steps, manual
   resets, leap smearing.  Without [CLOCK_MONOTONIC] bindings in the
   stdlib the portable fix is clamping: read the wall clock and never
   let the reported value go backwards.  A backward step freezes the
   clock until real time catches up (durations across the step read
   short, not negative), a forward step passes through — exactly the
   failure containment span math needs. *)

let wrap base =
  let last = ref neg_infinity in
  fun () ->
    let t = base () in
    if t > !last then last := t;
    !last

(* One process-wide clock so every registry, the daemon's timeout
   arithmetic and the span exporters agree on "now". *)
let now = wrap Unix.gettimeofday
