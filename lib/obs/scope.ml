(* The handle protocol code actually threads.  [Disabled] must cost
   nothing on hot paths: every operation below is a single constructor
   match with no allocation, so an uninstrumented run pays one branch
   per call site and nothing else.  Span helpers that take a closure
   ([timed]) allocate the closure at the call site regardless of state —
   they are for phase-granularity call sites only; block-granularity
   code uses [enter]/[leave], which are allocation-free when disabled. *)

type t = Disabled | Enabled of Registry.t

let disabled = Disabled
let of_registry r = Enabled r
let is_enabled = function Disabled -> false | Enabled _ -> true
let registry = function Disabled -> None | Enabled r -> Some r

let incr t name =
  match t with Disabled -> () | Enabled r -> Registry.incr r name

let add t name n =
  match t with Disabled -> () | Enabled r -> Registry.add r name n

let set_gauge t name v =
  match t with Disabled -> () | Enabled r -> Registry.set_gauge r name v

let observe t name v =
  match t with Disabled -> () | Enabled r -> Registry.observe r name v

let enter t name =
  match t with Disabled -> -1 | Enabled r -> Registry.span_enter r name

let leave t id =
  match t with
  | Disabled -> ()
  | Enabled r -> if id >= 0 then Registry.span_exit r id

let timed t name f =
  match t with Disabled -> f () | Enabled r -> Registry.with_span r name f
