(** 16-byte session trace ids (DESIGN.md §9).

    The client mints one per pull/push run and carries it in the
    protocol [Hello]; the server adopts it (or mints its own for a
    v1 client that sent none), so the client's [--trace-json] stream
    and the daemon's per-session stream tag their events with the same
    id and [fsync trace report] can join them. *)

type t = private string
(** Exactly {!size} raw bytes. *)

val size : int
(** 16. *)

val mint : unit -> t
(** A fresh id: time, pid and a process-local counter, digested. *)

val of_raw : string -> t option
(** [None] unless the string is exactly {!size} bytes. *)

val to_raw : t -> string

val to_hex : t -> string
(** 32 lowercase hex characters — the form events and reports use. *)

val of_hex : string -> t option

val equal : t -> t -> bool
