module Channel = Fsync_net.Channel
module Varint = Fsync_util.Varint
module Fp = Fsync_hash.Fingerprint
module Error = Fsync_core.Error
module Scope = Fsync_obs.Scope

type config = { digest_bytes : int }

let default_config = { digest_bytes = 4 }

type round = { label : string; c2s : int; s2c : int }

type result = {
  changed : string list;
  added : string list;
  deleted : string list;
  rounds : int;
  c2s_bytes : int;
  s2c_bytes : int;
  round_log : round list;
  widened : bool;
  fell_back : bool;
}

let total_bytes r = r.c2s_bytes + r.s2c_bytes

(* ---- wire helpers ---- *)

let pack_bitmap flags =
  let n = Array.length flags in
  let b = Bytes.make ((n + 7) / 8) '\000' in
  Array.iteri
    (fun i f ->
      if f then
        Bytes.set b (i / 8)
          (Char.chr (Char.code (Bytes.get b (i / 8)) lor (1 lsl (i mod 8)))))
    flags;
  Bytes.to_string b

let bitmap_get s i =
  let byte = i / 8 in
  if byte >= String.length s then
    Error.truncated "Recon: bitmap bit %d past %d bytes" i (String.length s);
  Char.code s.[byte] land (1 lsl (i mod 8)) <> 0

(* Bounds-checked substring: a corrupted length prefix must produce a
   typed error, never an [Invalid_argument] from [String.sub] or an
   allocation beyond the message. *)
let safe_sub s pos len what =
  if len < 0 || pos < 0 || pos + len > String.length s then
    Error.truncated "Recon: %s needs [%d,%d) of a %d-byte message" what pos
      (pos + len) (String.length s)
  else String.sub s pos len

let write_leaves buf leaves =
  Varint.write buf (List.length leaves);
  List.iter
    (fun (path, fp) ->
      Varint.write buf (String.length path);
      Buffer.add_string buf path;
      Buffer.add_string buf (Fp.to_raw fp))
    leaves

let read_leaves s pos =
  let n, pos = Varint.read s ~pos in
  (* Each leaf costs at least 1 length byte + 16 fingerprint bytes, so a
     declared count beyond this bound cannot be honest: reject before
     allocating the list. *)
  if n < 0 || n > (String.length s - pos) / (1 + Fp.size_bytes) then
    Error.limit "Recon: leaf count %d exceeds message capacity" n;
  let pos = ref pos in
  let out =
    List.init n (fun _ ->
        let len, p = Varint.read s ~pos:!pos in
        let path = safe_sub s p len "leaf path" in
        let fp = Fp.of_raw (safe_sub s (p + len) Fp.size_bytes "leaf fingerprint") in
        pos := p + len + Fp.size_bytes;
        (path, fp))
  in
  (out, !pos)

(* ---- the protocol ---- *)

type hypothesis = {
  h_changed : (string, Fp.t) Hashtbl.t;
  h_added : (string, Fp.t) Hashtbl.t;
  mutable h_deleted : string list;
}

let diff_leaf_lists hyp ~local ~remote =
  let local_tbl = Hashtbl.create 16 in
  List.iter (fun (p, fp) -> Hashtbl.replace local_tbl p fp) local;
  List.iter
    (fun (p, fp) ->
      match Hashtbl.find_opt local_tbl p with
      | None -> Hashtbl.replace hyp.h_added p fp
      | Some mine ->
          if not (Fp.equal mine fp) then Hashtbl.replace hyp.h_changed p fp)
    remote;
  let remote_tbl = Hashtbl.create 16 in
  List.iter (fun (p, _) -> Hashtbl.replace remote_tbl p ()) remote;
  List.iter
    (fun (p, _) ->
      if not (Hashtbl.mem remote_tbl p) then
        hyp.h_deleted <- p :: hyp.h_deleted)
    local

let run ?channel ?(config = default_config) ?(scope = Scope.disabled) ~client
    ~server () =
  if config.digest_bytes < 1 || config.digest_bytes > 16 then
    Error.malformed "Recon.run: digest_bytes %d out of 1..16" config.digest_bytes;
  if not (Merkle.equal_config (Merkle.config client) (Merkle.config server))
  then
    Error.malformed "Recon.run: replicas must agree on the tree configuration";
  let mcfg = Merkle.config client in
  let ch = match channel with Some c -> c | None -> Channel.create () in
  let recv dir =
    match Channel.recv_opt ch dir with
    | Some msg -> msg
    | None ->
        Error.channel_empty "Recon: expected a %s message"
          (match dir with
          | Channel.Client_to_server -> "client-to-server"
          | Channel.Server_to_client -> "server-to-client")
  in
  let log = ref [] in
  let send_c2s label payload =
    Channel.send ch ~label Channel.Client_to_server payload
  in
  let send_s2c label payload =
    Channel.send ch ~label Channel.Server_to_client payload
  in
  let record label c2s s2c =
    Scope.incr scope "recon_rounds";
    log := { label; c2s; s2c } :: !log
  in

  (* One full recursive descent at the given digest width.  Returns
     [`Clean] when the full-width roots already agree, or the diff
     hypothesis accumulated from truncated-digest comparisons. *)
  let descend width =
    let truncate d = String.sub d 0 width in
    (* level 0: client announces the width; server answers count + full
       root digest. *)
    let hello =
      let b = Buffer.create 2 in
      Varint.write b width;
      Buffer.contents b
    in
    send_c2s "recon:level-0" hello;
    (* server endpoint *)
    let server_width, _ = Varint.read (recv Channel.Client_to_server) ~pos:0 in
    if server_width < 1 || server_width > 16 then
      Error.malformed "Recon: announced digest width %d out of 1..16"
        server_width;
    let root_msg =
      let b = Buffer.create 20 in
      Varint.write b (Merkle.cardinal server);
      Buffer.add_string b (Merkle.root_digest server);
      Buffer.contents b
    in
    send_s2c "recon:level-0" root_msg;
    (* client endpoint *)
    let msg = recv Channel.Server_to_client in
    let _server_count, pos = Varint.read msg ~pos:0 in
    let server_root = safe_sub msg pos 16 "root digest" in
    record "recon:level-0" (String.length hello) (String.length root_msg);
    Scope.incr scope "merkle_nodes_visited";
    if String.equal server_root (Merkle.root_digest client) then `Clean
    else begin
      let hyp =
        {
          h_changed = Hashtbl.create 16;
          h_added = Hashtbl.create 16;
          h_deleted = [];
        }
      in
      (* Both endpoints track the list of ranges whose digests were
         offered in the previous round; the client's bitmap refers to
         that shared order, so ranges never travel on the wire. *)
      let offered = ref [| Merkle.root_range |] in
      let wants = ref [| true |] in
      let level = ref 0 in
      while Array.exists Fun.id !wants do
        incr level;
        let label = Printf.sprintf "recon:level-%d" !level in
        let sp_level = Scope.enter scope label in
        let bitmap = pack_bitmap !wants in
        send_c2s label bitmap;
        (* server endpoint: expand every selected range. *)
        let req = recv Channel.Client_to_server in
        let selected =
          Array.to_list !offered
          |> List.filteri (fun i _ -> bitmap_get req i)
        in
        let reply = Buffer.create 256 in
        List.iter
          (fun (r : Merkle.range) ->
            if Merkle.count_in_range server r <= mcfg.bucket_size || r.size <= 1
            then begin
              Buffer.add_char reply 'L';
              write_leaves reply (Merkle.leaves_in_range server r)
            end
            else begin
              Buffer.add_char reply 'S';
              Array.iter
                (fun child ->
                  Buffer.add_string reply
                    (String.sub (Merkle.digest_of_range server child) 0
                       server_width))
                (Merkle.children mcfg r)
            end)
          selected;
        send_s2c label (Buffer.contents reply);
        (* client endpoint: compare child digests / diff leaf lists. *)
        let resp = recv Channel.Server_to_client in
        let next_offered = ref [] and next_wants = ref [] in
        let pos = ref 0 in
        List.iter
          (fun (r : Merkle.range) ->
            if !pos >= String.length resp then
              Error.truncated "Recon: reply ends before range %d expansions"
                (Array.length !offered);
            let tag = resp.[!pos] in
            incr pos;
            match tag with
            | 'L' ->
                let remote, p = read_leaves resp !pos in
                pos := p;
                Scope.incr scope "merkle_nodes_visited";
                diff_leaf_lists hyp ~local:(Merkle.leaves_in_range client r)
                  ~remote
            | 'S' ->
                Array.iter
                  (fun (child : Merkle.range) ->
                    let theirs = safe_sub resp !pos width "child digest" in
                    pos := !pos + width;
                    Scope.incr scope "merkle_nodes_visited";
                    let mine = truncate (Merkle.digest_of_range client child) in
                    next_offered := child :: !next_offered;
                    next_wants := (not (String.equal mine theirs)) :: !next_wants)
                  (Merkle.children mcfg r)
            | c -> Error.malformed "Recon: bad tag %C" c)
          selected;
        offered := Array.of_list (List.rev !next_offered);
        wants := Array.of_list (List.rev !next_wants);
        record label (String.length bitmap) (String.length resp);
        Scope.leave scope sp_level
      done;
      `Diff hyp
    end
  in

  let finish ~widened ~fell_back hyp =
    let sorted_keys tbl =
      Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] |> List.sort String.compare
    in
    let rounds_list = List.rev !log in
    {
      changed = sorted_keys hyp.h_changed;
      added = sorted_keys hyp.h_added;
      deleted = List.sort String.compare hyp.h_deleted;
      rounds = List.length rounds_list;
      c2s_bytes = List.fold_left (fun a r -> a + r.c2s) 0 rounds_list;
      s2c_bytes = List.fold_left (fun a r -> a + r.s2c) 0 rounds_list;
      round_log = rounds_list;
      widened;
      fell_back;
    }
  in
  let empty_hyp =
    { h_changed = Hashtbl.create 1; h_added = Hashtbl.create 1; h_deleted = [] }
  in

  (* Ultimate safety net: exchange the complete leaf list, making the
     diff exact even under MD5 collisions in interior digests. *)
  let fallback ~widened =
    Scope.incr scope "recon_fallbacks";
    send_c2s "recon:fallback" "\001";
    ignore (recv Channel.Client_to_server);
    let msg = Buffer.create 1024 in
    write_leaves msg (Merkle.leaves server);
    send_s2c "recon:fallback" (Buffer.contents msg);
    let resp = recv Channel.Server_to_client in
    let remote, _ = read_leaves resp 0 in
    let hyp =
      { h_changed = Hashtbl.create 16; h_added = Hashtbl.create 16; h_deleted = [] }
    in
    diff_leaf_lists hyp ~local:(Merkle.leaves client) ~remote;
    record "recon:fallback" 1 (String.length resp);
    finish ~widened ~fell_back:true hyp
  in

  let rec attempt width ~widened =
    match descend width with
    | `Clean -> finish ~widened ~fell_back:false empty_hyp
    | `Diff hyp ->
        (* Confirmation: apply the hypothesis to the client's own tree
           (incremental updates) and check the resulting root against the
           server's at full width. *)
        let expected =
          let t = ref client in
          Hashtbl.iter (fun p fp -> t := Merkle.set !t p fp) hyp.h_changed;
          Hashtbl.iter (fun p fp -> t := Merkle.set !t p fp) hyp.h_added;
          List.iter (fun p -> t := Merkle.remove !t p) hyp.h_deleted;
          !t
        in
        send_c2s "recon:confirm" (Merkle.root_digest expected);
        let claim = recv Channel.Client_to_server in
        let verdict =
          if String.equal claim (Merkle.root_digest server) then "\001" else "\000"
        in
        send_s2c "recon:confirm" verdict;
        let ok = String.equal (recv Channel.Server_to_client) "\001" in
        record "recon:confirm" 16 1;
        if ok then finish ~widened ~fell_back:false hyp
        else if width < 16 then begin
          Scope.incr scope "recon_widened";
          attempt 16 ~widened:true
        end
        else fallback ~widened
  in
  Scope.timed scope "recon" (fun () ->
      attempt config.digest_bytes ~widened:false)

let run_result ?channel ?config ?scope ~client ~server () =
  Error.guard (fun () -> run ?channel ?config ?scope ~client ~server ())

let pp_result ppf r =
  Format.fprintf ppf
    "@[<v>recon: %d changed, %d new, %d deleted; %d rounds, c2s=%d s2c=%d%s%s@]"
    (List.length r.changed) (List.length r.added) (List.length r.deleted)
    r.rounds r.c2s_bytes r.s2c_bytes
    (if r.widened then " (widened)" else "")
    (if r.fell_back then " (fell back)" else "")
