(** Deterministic hash tree over the path space of a collection.

    Leaves are (path, whole-file fingerprint) pairs placed in a fixed
    61-bit key space by hashing the path; internal nodes cover canonical
    key ranges obtained by recursively splitting the space into [fanout]
    subranges.  The digest of a range is a pure function of the set of
    leaves whose key falls inside it — independent of how either replica
    happens to represent that range locally — so two replicas agree on a
    range digest exactly when they agree on every file in the range.
    This is what lets the reconciliation protocol ({!Recon}) descend
    only into differing subtrees, mirroring the paper's recursive
    splitting of unmatched file regions at the collection level.

    Digest rule for a canonical range [R] holding leaf set [S]:
    - if [|S| <= bucket_size] (or [R] can no longer be split):
      [MD5 ("L" ++ serialized leaves of S in (key, path) order)];
    - otherwise [MD5 ("N" ++ concatenated child-range digests)].

    Trees are persistent; {!set} / {!remove} rebuild only the spine from
    the touched leaf to the root (O(depth) digest recomputations). *)

type config = {
  fanout : int;       (** children per internal node; >= 2 *)
  bucket_size : int;  (** max leaves summarized by a single leaf node; >= 1 *)
}

val default_config : config
(** fanout 16, bucket_size 8. *)

type t

val equal_config : config -> config -> bool
(** Monomorphic equality (R1): replicas must agree on the tree shape
    before digests are comparable. *)

val build :
  ?config:config ->
  ?scope:Fsync_obs.Scope.t ->
  (string * Fsync_hash.Fingerprint.t) list ->
  t
(** Build from (path, fingerprint) pairs.  An enabled [scope] records a
    [merkle_build] span and the [merkle_leaves_built] counter.
    @raise Fsync_core.Error.E ([Malformed]) on duplicate paths or an
    invalid config. *)

val of_files :
  ?config:config -> ?scope:Fsync_obs.Scope.t -> (string * string) list -> t
(** [build] over (path, contents) pairs, fingerprinting each content. *)

val config : t -> config
val cardinal : t -> int

val root_digest : t -> string
(** 16 bytes; equal on two replicas iff their (path, fingerprint) sets
    are equal (up to MD5 collisions). *)

val find : t -> string -> Fsync_hash.Fingerprint.t option

val leaves : t -> (string * Fsync_hash.Fingerprint.t) list
(** Sorted by path. *)

val set : t -> string -> Fsync_hash.Fingerprint.t -> t
(** Insert or replace one leaf, recomputing only the root spine. *)

val remove : t -> string -> t
(** Remove a leaf if present. *)

(** {2 Canonical ranges}

    The reconciliation protocol addresses subtrees by canonical key
    range; both endpoints derive identical ranges from [config] alone. *)

type range = { lo : int; size : int }

val root_range : range
(** The whole key space, [{lo = 0; size = 2^61}]. *)

val children : config -> range -> range array
(** The [fanout] canonical subranges of a range (empty array when the
    range has size 1 and cannot be split). *)

val key_of_path : string -> int
(** The 61-bit key a path hashes to. *)

val digest_of_range : t -> range -> string
(** Digest of the canonical range per the rule above, regardless of how
    this tree represents the range internally.  16 bytes. *)

val count_in_range : t -> range -> int

val leaves_in_range : t -> range -> (string * Fsync_hash.Fingerprint.t) list
(** Leaves whose key falls in the range, in (key, path) order — the
    serialization order of the digest rule. *)
