(** Merkle anti-entropy reconciliation of collection metadata.

    A multi-round dialogue over {!Fsync_net.Channel} that computes the
    exact changed / new / deleted path sets between two replicas while
    spending bytes proportional to the size of the *diff*, not the size
    of the collection — the collection-level analogue of the paper's
    recursive splitting of unmatched file regions (§5.1): the client
    descends only into subtrees whose digests differ, narrowing
    geometrically each round.

    Round structure (one round trip per tree level, so a whole
    collection costs [O(log n)] trips however many files differ):
    - [recon:level-0] — client announces the digest width, server
      answers with its leaf count and *full-width* root digest;
    - [recon:level-k] — client sends a bitmap selecting the offered
      ranges whose digests disagreed; the server expands each selected
      range into either child digests (truncated to [digest_bytes]) or,
      once few enough leaves remain, the (path, fingerprint) leaves
      themselves;
    - [recon:confirm] — the client applies the hypothesised diff to its
      own tree and sends the resulting full-width root; the server
      acknowledges.  A truncated-digest collision can hide a differing
      subtree, so a failed confirmation re-runs the descent at full
      16-byte width ([widened = true]); if even that fails (an MD5
      collision), [recon:fallback] exchanges the complete leaf list, so
      the returned diff is exact unconditionally. *)

type config = {
  digest_bytes : int;
      (** wire width of interior digests, 1..16; leaf fingerprints are
          always sent at full width *)
}

val default_config : config
(** [digest_bytes = 4]: collisions are ~2^-32 per comparison and are
    caught by the confirmation round. *)

type round = { label : string; c2s : int; s2c : int }
(** Byte accounting for one round trip, labelled as on the channel. *)

type result = {
  changed : string list;  (** on both replicas, fingerprints differ *)
  added : string list;    (** on the server only *)
  deleted : string list;  (** on the client only *)
  rounds : int;           (** round trips consumed *)
  c2s_bytes : int;
  s2c_bytes : int;
  round_log : round list; (** per-round accounting, in protocol order *)
  widened : bool;         (** a truncated-digest collision forced a
                              full-width re-descent *)
  fell_back : bool;       (** the full leaf list had to be exchanged *)
}

val total_bytes : result -> int

val run :
  ?channel:Fsync_net.Channel.t ->
  ?config:config ->
  ?scope:Fsync_obs.Scope.t ->
  client:Merkle.t ->
  server:Merkle.t ->
  unit ->
  result
(** Run both endpoints over the channel (created if not supplied); every
    reported byte crosses a real serialize/parse boundary.  All path
    lists in the result are sorted.

    An enabled [scope] records a [recon] span with one child span per
    descent level, and the [recon_rounds] / [recon_widened] /
    [recon_fallbacks] / [merkle_nodes_visited] counters.
    @raise Fsync_core.Error.E ([Malformed]) if the two trees disagree on
    fanout or bucket size, or if [digest_bytes] is outside 1..16; also
    if the channel delivers corrupt or missing messages (only possible over a faulty link — see {!Fsync_net.Fault});
    every decode is bounds-checked before any read or allocation, so
    malformed bytes surface as a typed error, never a bare exception or
    an unbounded allocation.  Use {!run_result} in that setting. *)

val run_result :
  ?channel:Fsync_net.Channel.t ->
  ?config:config ->
  ?scope:Fsync_obs.Scope.t ->
  client:Merkle.t ->
  server:Merkle.t ->
  unit ->
  (result, Fsync_core.Error.t) Stdlib.result
(** {!run} wrapped in {!Fsync_core.Error.guard}: over a faulty channel,
    corrupt or missing messages surface as a typed error instead of an
    exception.  {!Fsync_net.Fault.Disconnected} still propagates so a
    session driver can checkpoint and resume. *)

val pp_result : Format.formatter -> result -> unit
