module Md5 = Fsync_hash.Md5
module Error = Fsync_core.Error
module Fp = Fsync_hash.Fingerprint
module Varint = Fsync_util.Varint
module Scope = Fsync_obs.Scope

type config = { fanout : int; bucket_size : int }

let default_config = { fanout = 16; bucket_size = 8 }

let key_bits = 61
let key_space = 1 lsl key_bits

type range = { lo : int; size : int }

let root_range = { lo = 0; size = key_space }

(* A leaf stores the raw 16-byte fingerprint; the key is derived from the
   path so both replicas place the same path at the same point of the key
   space regardless of insertion order. *)
type leaf = { key : int; path : string; fp : string }

type node =
  | Bucket of { digest : string; leaves : leaf list (* (key, path) order *) }
  | Split of { digest : string; count : int; children : node array }

type t = { cfg : config; root : node }

let config t = t.cfg

let key_of_path path =
  let d = Md5.digest path in
  let k = ref 0L in
  for i = 0 to 7 do
    k := Int64.logor (Int64.shift_left !k 8) (Int64.of_int (Char.code d.[i]))
  done;
  Int64.to_int (Int64.shift_right_logical !k (64 - key_bits))

let leaf_compare a b =
  match Int.compare a.key b.key with
  | 0 -> String.compare a.path b.path
  | c -> c

(* ---- digests ---- *)

let bucket_digest leaves =
  let buf = Buffer.create 64 in
  Buffer.add_char buf 'L';
  List.iter
    (fun l ->
      Varint.write buf (String.length l.path);
      Buffer.add_string buf l.path;
      Buffer.add_string buf l.fp)
    leaves;
  Md5.digest (Buffer.contents buf)

let split_digest children =
  let buf = Buffer.create (1 + (16 * Array.length children)) in
  Buffer.add_char buf 'N';
  Array.iter
    (fun child ->
      Buffer.add_string buf
        (match child with Bucket b -> b.digest | Split s -> s.digest))
    children;
  Md5.digest (Buffer.contents buf)

let node_digest = function Bucket b -> b.digest | Split s -> s.digest
let node_count = function Bucket b -> List.length b.leaves | Split s -> s.count

(* ---- canonical ranges ---- *)

(* [split_point size fanout i] is the offset of the i-th child boundary;
   exact partition without overflow even for the full 2^61 key space. *)
let split_point size fanout i = ((size / fanout) * i) + min i (size mod fanout)

let children cfg r =
  if r.size <= 1 then [||]
  else
    Array.init cfg.fanout (fun i ->
        let l = r.lo + split_point r.size cfg.fanout i in
        let h = r.lo + split_point r.size cfg.fanout (i + 1) in
        { lo = l; size = h - l })

let in_range r key = key >= r.lo && key < r.lo + r.size

let child_index cfg r key =
  let chs = children cfg r in
  let rec find i =
    if i >= Array.length chs then
      Error.malformed "Merkle.child_index: key %d outside range [%d,%d)" key
        r.lo (r.lo + r.size)
    else if in_range chs.(i) key then (i, chs)
    else find (i + 1)
  in
  find 0

(* ---- construction ---- *)

(* Deterministic structure: a canonical range splits iff it holds more
   than [bucket_size] leaves and can still be subdivided.  The digest of
   a range is therefore a pure function of its leaf set. *)
let rec make cfg r leaves n =
  if n <= cfg.bucket_size || r.size <= 1 then
    Bucket { digest = bucket_digest leaves; leaves }
  else
    let chs = children cfg r in
    let rest = ref leaves in
    let nodes =
      Array.map
        (fun cr ->
          let mine, others =
            (* leaves are (key, path)-sorted, so each child takes a prefix *)
            let rec take acc = function
              | l :: tl when in_range cr l.key -> take (l :: acc) tl
              | tl -> (List.rev acc, tl)
            in
            take [] !rest
          in
          rest := others;
          make cfg cr mine (List.length mine))
        chs
    in
    Split { digest = split_digest nodes; count = n; children = nodes }

let equal_config a b =
  Int.equal a.fanout b.fanout && Int.equal a.bucket_size b.bucket_size

let validate_config cfg =
  if cfg.fanout < 2 then Error.malformed "Merkle: fanout must be >= 2";
  if cfg.bucket_size < 1 then Error.malformed "Merkle: bucket_size must be >= 1"

let build ?(config = default_config) ?(scope = Scope.disabled) pairs =
  validate_config config;
  let sp = Scope.enter scope "merkle_build" in
  let leaves =
    List.map
      (fun (path, fp) -> { key = key_of_path path; path; fp = Fp.to_raw fp })
      pairs
    |> List.sort leaf_compare
  in
  let rec check = function
    | a :: (b :: _ as tl) ->
        if String.equal a.path b.path then
          Error.malformed "Merkle.build: duplicate path %s" a.path;
        check tl
    | _ -> ()
  in
  check leaves;
  let n = List.length leaves in
  let t = { cfg = config; root = make config root_range leaves n } in
  Scope.add scope "merkle_leaves_built" n;
  Scope.leave scope sp;
  t

let of_files ?config ?scope pairs =
  build ?config ?scope
    (List.map (fun (p, content) -> (p, Fp.of_string content)) pairs)

let cardinal t = node_count t.root
let root_digest t = node_digest t.root

(* ---- queries ---- *)

let rec collect acc = function
  | Bucket b -> List.rev_append b.leaves acc
  | Split s -> Array.fold_left collect acc s.children

let leaves t =
  collect [] t.root
  |> List.sort (fun a b -> String.compare a.path b.path)
  |> List.map (fun l -> (l.path, Fp.of_raw l.fp))

let find t path =
  let key = key_of_path path in
  let rec go r node =
    match node with
    | Bucket b ->
        List.find_opt (fun l -> String.equal l.path path) b.leaves
        |> Option.map (fun l -> Fp.of_raw l.fp)
    | Split s ->
        let i, chs = child_index t.cfg r key in
        go chs.(i) s.children.(i)
  in
  go root_range t.root

(* Walk to the deepest explicit node containing the canonical range, then
   apply [on_node] if the node covers exactly the range, or [on_bucket]
   with the leaves filtered to the range when the local tree stopped
   splitting above it. *)
let rec seek cfg r node target ~on_node ~on_bucket =
  if Int.equal r.lo target.lo && Int.equal r.size target.size then on_node node
  else
    match node with
    | Bucket b ->
        on_bucket (List.filter (fun l -> in_range target l.key) b.leaves)
    | Split s ->
        let i, chs = child_index cfg r target.lo in
        seek cfg chs.(i) s.children.(i) target ~on_node ~on_bucket

let digest_of_range t target =
  if target.size = 0 then bucket_digest []
  else
    seek t.cfg root_range t.root target
      ~on_node:node_digest
      ~on_bucket:(fun ls -> bucket_digest ls)

let count_in_range t target =
  if target.size = 0 then 0
  else
    seek t.cfg root_range t.root target
      ~on_node:node_count
      ~on_bucket:List.length

let leaves_in_range t target =
  if target.size = 0 then []
  else
    seek t.cfg root_range t.root target
      ~on_node:(fun n -> List.sort leaf_compare (collect [] n))
      ~on_bucket:(fun ls -> ls)
    |> List.map (fun l -> (l.path, Fp.of_raw l.fp))

(* ---- incremental update ---- *)

(* Replace/insert/delete one path, recomputing digests only along the
   root spine; a bucket that overflows is re-split locally, a split node
   whose count drops to [bucket_size] collapses back to a bucket, so the
   structure stays the deterministic function of the leaf set that the
   digest rule requires. *)
let update t path fp_opt =
  let key = key_of_path path in
  let leaf = Option.map (fun fp -> { key; path; fp = Fp.to_raw fp }) fp_opt in
  let apply_bucket leaves =
    let without = List.filter (fun l -> not (String.equal l.path path)) leaves in
    match leaf with
    | None -> without
    | Some l -> List.sort leaf_compare (l :: without)
  in
  let rec go r node =
    match node with
    | Bucket b ->
        let leaves = apply_bucket b.leaves in
        make t.cfg r leaves (List.length leaves)
    | Split s ->
        let i, chs = child_index t.cfg r key in
        let old_child = s.children.(i) in
        let new_child = go chs.(i) old_child in
        let count = s.count - node_count old_child + node_count new_child in
        if count <= t.cfg.bucket_size then
          let leaves =
            let all = ref [] in
            Array.iteri
              (fun j c -> all := collect !all (if Int.equal j i then new_child else c))
              s.children;
            List.sort leaf_compare !all
          in
          Bucket { digest = bucket_digest leaves; leaves }
        else
          let nodes = Array.copy s.children in
          nodes.(i) <- new_child;
          Split { digest = split_digest nodes; count; children = nodes }
  in
  { t with root = go root_range t.root }

let set t path fp = update t path (Some fp)
let remove t path = update t path None
