type token =
  | Literal of char
  | Match of { length : int; distance : int }

let min_match = 3
let max_match = 258
let max_distance = 32768

type level = Fast | Normal | Best

let hash_size_bits = 15
let hash_size = 1 lsl hash_size_bits

let hash3 s i =
  (* Multiplicative hash of 3 bytes. *)
  let v =
    Char.code (String.unsafe_get s i)
    lor (Char.code (String.unsafe_get s (i + 1)) lsl 8)
    lor (Char.code (String.unsafe_get s (i + 2)) lsl 16)
  in
  (v * 0x9E3779B1) lsr (31 - hash_size_bits) land (hash_size - 1)

let chain_depth = function Fast -> 8 | Normal -> 64 | Best -> 512

let tokenize ?(level = Normal) s =
  let n = String.length s in
  if n < min_match then List.init n (fun i -> Literal s.[i])
  else begin
    let head = Array.make hash_size (-1) in
    let prev = Array.make n (-1) in
    let max_depth = chain_depth level in
    let lazy_matching = level <> Fast in
    let insert i =
      if i + min_match <= n then begin
        let h = hash3 s i in
        prev.(i) <- head.(h);
        head.(h) <- i
      end
    in
    let match_len i j =
      (* longest common run of s[i..] and s[j..], j < i, capped *)
      let cap = min max_match (n - i) in
      let rec loop k =
        if k < cap && String.unsafe_get s (i + k) = String.unsafe_get s (j + k)
        then loop (k + 1)
        else k
      in
      loop 0
    in
    let best_match i =
      if i + min_match > n then None
      else begin
        let h = hash3 s i in
        let rec loop j depth best_len best_pos =
          if j < 0 || depth = 0 || i - j > max_distance then (best_len, best_pos)
          else
            let l = match_len i j in
            if l > best_len then
              if l >= max_match || l >= n - i then (l, j)
              else loop prev.(j) (depth - 1) l j
            else loop prev.(j) (depth - 1) best_len best_pos
        in
        let len, pos = loop head.(h) max_depth 0 (-1) in
        if len >= min_match then Some (len, i - pos) else None
      end
    in
    let acc = ref [] in
    let emit t = acc := t :: !acc in
    let i = ref 0 in
    while !i < n do
      match best_match !i with
      | None ->
          emit (Literal s.[!i]);
          insert !i;
          incr i
      | Some (len, dist) ->
          insert !i;
          (* Lazy matching: if the very next position holds a strictly
             longer match, emit a literal here and take that one instead. *)
          let deferred =
            lazy_matching && !i + 1 < n && len < max_match
            &&
            match best_match (!i + 1) with
            | Some (len', _) -> len' > len
            | None -> false
          in
          if deferred then begin
            emit (Literal s.[!i]);
            incr i
          end
          else begin
            emit (Match { length = len; distance = dist });
            (* Index the positions covered by the match so later input can
               refer back into it. *)
            let stop = min (!i + len) (n - min_match) in
            let j = ref (!i + 1) in
            while !j < stop do
              insert !j;
              incr j
            done;
            i := !i + len
          end
    done;
    List.rev !acc
  end

let expand tokens =
  let buf = Buffer.create 1024 in
  List.iter
    (function
      | Literal c -> Buffer.add_char buf c
      | Match { length; distance } ->
          if distance <= 0 || distance > Buffer.length buf then
            invalid_arg "Lz77.expand: bad distance";
          for _ = 1 to length do
            Buffer.add_char buf (Buffer.nth buf (Buffer.length buf - distance))
          done)
    tokens;
  Buffer.contents buf

let check_stream s tokens = String.equal (expand tokens) s
