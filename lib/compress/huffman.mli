(** Canonical, length-limited Huffman coding.

    Backs the {!Deflate} entropy coder: symbol frequencies are turned into
    code lengths (limited to {!max_code_length} bits, zlib-style overflow
    adjustment), lengths into canonical codes, and codes are written
    LSB-first through {!Fsync_util.Bitio}. *)

val max_code_length : int
(** 15, as in DEFLATE. *)

val lengths_of_freqs : ?limit:int -> int array -> int array
(** [lengths_of_freqs freqs] assigns a code length to every symbol with a
    non-zero frequency (0 to the others), minimizing expected length
    subject to the limit.  A single-symbol alphabet gets length 1.
    The result always satisfies Kraft equality when >= 2 symbols are
    present. *)

type encoder
(** Symbol -> (code, length) table. *)

val encoder_of_lengths : int array -> encoder

val encode : encoder -> Fsync_util.Bitio.Writer.t -> int -> unit
(** Append the code for a symbol.
    @raise Invalid_argument for a symbol with length 0. *)

val code_length : encoder -> int -> int
(** Length in bits of a symbol's code (0 if absent). *)

type decoder

val decoder_of_lengths : int array -> decoder

val decode : decoder -> Fsync_util.Bitio.Reader.t -> int
(** Read one symbol.  @raise Invalid_argument on an invalid code. *)

val cost_bits : int array -> int array -> int
(** [cost_bits lengths freqs]: total bits to encode the given frequency
    profile with the given lengths (table transmission not included). *)
