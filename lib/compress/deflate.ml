module Bitio = Fsync_util.Bitio
module Varint = Fsync_util.Varint

type level = Lz77.level = Fast | Normal | Best

(* --- DEFLATE length/distance code geometry (RFC 1951 tables) --- *)

(* Length codes 257..285: (base length, extra bits). *)
let length_codes =
  [| (3, 0); (4, 0); (5, 0); (6, 0); (7, 0); (8, 0); (9, 0); (10, 0);
     (11, 1); (13, 1); (15, 1); (17, 1); (19, 2); (23, 2); (27, 2); (31, 2);
     (35, 3); (43, 3); (51, 3); (59, 3); (67, 4); (83, 4); (99, 4); (115, 4);
     (131, 5); (163, 5); (195, 5); (227, 5); (258, 0) |]

(* Distance codes 0..29: (base distance, extra bits). *)
let dist_codes =
  [| (1, 0); (2, 0); (3, 0); (4, 0); (5, 1); (7, 1); (9, 2); (13, 2);
     (17, 3); (25, 3); (33, 4); (49, 4); (65, 5); (97, 5); (129, 6); (193, 6);
     (257, 7); (385, 7); (513, 8); (769, 8); (1025, 9); (1537, 9);
     (2049, 10); (3073, 10); (4097, 11); (6145, 11); (8193, 12); (12289, 12);
     (16385, 13); (24577, 13) |]

let eob = 256
let n_litlen = 286
let n_dist = 30

let length_code_of len =
  (* Largest code whose base <= len. *)
  let rec loop lo hi =
    if lo = hi then lo
    else
      let mid = (lo + hi + 1) / 2 in
      if fst length_codes.(mid) <= len then loop mid hi else loop lo (mid - 1)
  in
  loop 0 (Array.length length_codes - 1)

let dist_code_of dist =
  let rec loop lo hi =
    if lo = hi then lo
    else
      let mid = (lo + hi + 1) / 2 in
      if fst dist_codes.(mid) <= dist then loop mid hi else loop lo (mid - 1)
  in
  loop 0 (Array.length dist_codes - 1)

(* Fixed code lengths from RFC 1951 §3.2.6. *)
let fixed_litlen_lengths =
  Array.init n_litlen (fun i ->
      if i < 144 then 8 else if i < 256 then 9 else if i < 280 then 7 else 8)

let fixed_dist_lengths = Array.make n_dist 5

(* --- token stream <-> symbols --- *)

let token_freqs tokens =
  let lit = Array.make n_litlen 0 and dst = Array.make n_dist 0 in
  List.iter
    (function
      | Lz77.Literal c -> lit.(Char.code c) <- lit.(Char.code c) + 1
      | Lz77.Match { length; distance } ->
          let lc = 257 + length_code_of length in
          lit.(lc) <- lit.(lc) + 1;
          let dc = dist_code_of distance in
          dst.(dc) <- dst.(dc) + 1)
    tokens;
  lit.(eob) <- 1;
  (lit, dst)

let write_tokens w lit_enc dist_enc tokens =
  List.iter
    (function
      | Lz77.Literal c -> Huffman.encode lit_enc w (Char.code c)
      | Lz77.Match { length; distance } ->
          let lc = length_code_of length in
          let base, extra = length_codes.(lc) in
          Huffman.encode lit_enc w (257 + lc);
          if extra > 0 then Bitio.Writer.put_bits w (length - base) ~width:extra;
          let dc = dist_code_of distance in
          let dbase, dextra = dist_codes.(dc) in
          Huffman.encode dist_enc w dc;
          if dextra > 0 then Bitio.Writer.put_bits w (distance - dbase) ~width:dextra)
    tokens;
  Huffman.encode lit_enc w eob

let read_tokens r lit_dec dist_dec =
  let rec loop acc =
    let sym = Huffman.decode lit_dec r in
    if sym = eob then List.rev acc
    else if sym < 256 then loop (Lz77.Literal (Char.chr sym) :: acc)
    else begin
      let lc = sym - 257 in
      if lc < 0 || lc >= Array.length length_codes then
        invalid_arg "Deflate: bad length code";
      let base, extra = length_codes.(lc) in
      let length = base + if extra > 0 then Bitio.Reader.get_bits r ~width:extra else 0 in
      let dc = Huffman.decode dist_dec r in
      if dc < 0 || dc >= Array.length dist_codes then
        invalid_arg "Deflate: bad distance code";
      let dbase, dextra = dist_codes.(dc) in
      let distance =
        dbase + if dextra > 0 then Bitio.Reader.get_bits r ~width:dextra else 0
      in
      loop (Lz77.Match { length; distance } :: acc)
    end
  in
  loop []

(* --- table transmission for dynamic blocks: 4 bits per code length --- *)

let write_lengths w lengths n =
  for i = 0 to n - 1 do
    Bitio.Writer.put_bits w lengths.(i) ~width:4
  done

let read_lengths r n =
  Array.init n (fun _ -> Bitio.Reader.get_bits r ~width:4)

(* --- container ---

   varint original_length; 1 byte mode (0 stored, 1 fixed, 2 dynamic);
   payload.  Stored payload is the raw bytes; fixed/dynamic payloads are
   bit-packed. *)

let overhead_bytes = 6 (* worst case: 5-byte varint + mode byte *)

let mode_stored = 0
let mode_fixed = 1
let mode_dynamic = 2

let emit_container ~orig_len ~mode ~payload =
  let buf = Buffer.create (String.length payload + 8) in
  Varint.write buf orig_len;
  Buffer.add_char buf (Char.chr mode);
  Buffer.add_string buf payload;
  Buffer.contents buf

let compress ?(level = Normal) s =
  let n = String.length s in
  if n = 0 then emit_container ~orig_len:0 ~mode:mode_stored ~payload:""
  else begin
    let tokens = Lz77.tokenize ~level s in
    (* Fixed-code encoding. *)
    let fixed_payload =
      let w = Bitio.Writer.create ~initial_size:(n / 2) () in
      write_tokens w
        (Huffman.encoder_of_lengths fixed_litlen_lengths)
        (Huffman.encoder_of_lengths fixed_dist_lengths)
        tokens;
      Bitio.Writer.contents w
    in
    (* Dynamic-code encoding. *)
    let dyn_payload =
      let lit_f, dist_f = token_freqs tokens in
      let lit_l = Huffman.lengths_of_freqs lit_f in
      let dist_l = Huffman.lengths_of_freqs dist_f in
      let w = Bitio.Writer.create ~initial_size:(n / 2) () in
      write_lengths w lit_l n_litlen;
      write_lengths w dist_l n_dist;
      write_tokens w (Huffman.encoder_of_lengths lit_l)
        (Huffman.encoder_of_lengths dist_l)
        tokens;
      Bitio.Writer.contents w
    in
    let candidates =
      [ (mode_stored, s); (mode_fixed, fixed_payload); (mode_dynamic, dyn_payload) ]
    in
    let mode, payload =
      List.fold_left
        (fun (bm, bp) (m, p) ->
          if String.length p < String.length bp then (m, p) else (bm, bp))
        (List.hd candidates) (List.tl candidates)
    in
    emit_container ~orig_len:n ~mode ~payload
  end

let decompress packed =
  let orig_len, pos = Varint.read packed ~pos:0 in
  if pos >= String.length packed && orig_len > 0 then
    invalid_arg "Deflate.decompress: truncated";
  if orig_len = 0 then ""
  else begin
    let mode = Char.code packed.[pos] in
    let payload_pos = pos + 1 in
    if mode = mode_stored then begin
      if String.length packed - payload_pos < orig_len then
        invalid_arg "Deflate.decompress: truncated stored block";
      String.sub packed payload_pos orig_len
    end
    else begin
      let r = Bitio.Reader.of_string ~bit_offset:(payload_pos * 8) packed in
      let lit_dec, dist_dec =
        if mode = mode_fixed then
          ( Huffman.decoder_of_lengths fixed_litlen_lengths,
            Huffman.decoder_of_lengths fixed_dist_lengths )
        else if mode = mode_dynamic then begin
          let lit_l = read_lengths r n_litlen in
          let dist_l = read_lengths r n_dist in
          (Huffman.decoder_of_lengths lit_l, Huffman.decoder_of_lengths dist_l)
        end
        else invalid_arg "Deflate.decompress: unknown mode"
      in
      let tokens = read_tokens r lit_dec dist_dec in
      let out = Lz77.expand tokens in
      if String.length out <> orig_len then
        invalid_arg "Deflate.decompress: length mismatch";
      out
    end
  end

let compressed_size ?level s = String.length (compress ?level s)
