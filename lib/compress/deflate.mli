(** DEFLATE-style general-purpose compressor.

    Stands in for the gzip compression that rsync and the paper's prototype
    apply to literal and hash streams ("compressed using an algorithm
    similar to gzip", §2.2).  The bitstream container is our own (not
    RFC 1951 interoperable) but the coding machinery is the same: LZ77
    tokens entropy-coded with canonical Huffman codes, standard DEFLATE
    length/distance code geometry, with three block modes — [Stored],
    [Fixed] codes, and [Dynamic] codes — the smallest of which is chosen. *)

type level = Lz77.level = Fast | Normal | Best

val compress : ?level:level -> string -> string

val decompress : string -> string
(** @raise Invalid_argument on a malformed input. *)

val compressed_size : ?level:level -> string -> int
(** [String.length (compress s)] without keeping the output. *)

val overhead_bytes : int
(** Fixed per-message header cost (varint length + mode tag), useful when
    accounting protocol costs. *)
