(** LZ77 tokenization with hash-chain match finding.

    Produces the (literal | match) token stream that {!Deflate} entropy
    codes.  Matches are at least {!min_match} and at most {!max_match}
    bytes, with distances up to {!max_distance} — the DEFLATE geometry, so
    the standard length/distance code tables apply. *)

type token =
  | Literal of char
  | Match of { length : int; distance : int }

val min_match : int
(** 3 *)

val max_match : int
(** 258 *)

val max_distance : int
(** 32768 *)

type level = Fast | Normal | Best
(** Trade-off knob: chain search depth and lazy matching. *)

val tokenize : ?level:level -> string -> token list
(** Token stream whose expansion is exactly the input. *)

val expand : token list -> string
(** Inverse of {!tokenize} (for any well-formed stream). *)

val check_stream : string -> token list -> bool
(** Does the stream expand to the given string? *)
