module Bitio = Fsync_util.Bitio

let max_code_length = 15

(* Unbounded Huffman code lengths via the classic two-queue construction:
   leaves sorted ascending by frequency in one queue, freshly built internal
   nodes (non-decreasing weights) in the other. *)
let unbounded_lengths freqs =
  let n = Array.length freqs in
  let leaves =
    Array.to_list (Array.mapi (fun i f -> (f, i)) freqs)
    |> List.filter (fun (f, _) -> f > 0)
    |> List.sort compare
  in
  match leaves with
  | [] -> Array.make n 0
  | [ (_, i) ] ->
      let l = Array.make n 0 in
      l.(i) <- 1;
      l
  | _ ->
      (* Tree nodes: Leaf sym | Node (l, r); weights tracked alongside. *)
      let module Q = Queue in
      let leaf_q = Q.create () and node_q = Q.create () in
      List.iter (fun (f, i) -> Q.add (f, `Leaf i) leaf_q) leaves;
      let take_min () =
        match (Q.is_empty leaf_q, Q.is_empty node_q) with
        | true, true -> assert false
        | true, false -> Q.pop node_q
        | false, true -> Q.pop leaf_q
        | false, false ->
            let wl, _ = Q.peek leaf_q and wn, _ = Q.peek node_q in
            if wl <= wn then Q.pop leaf_q else Q.pop node_q
      in
      let rec build () =
        let w1, t1 = take_min () in
        if Q.is_empty leaf_q && Q.is_empty node_q then t1
        else begin
          let w2, t2 = take_min () in
          Q.add (w1 + w2, `Node (t1, t2)) node_q;
          build ()
        end
      in
      let root = build () in
      let lengths = Array.make n 0 in
      let rec assign depth = function
        | `Leaf i -> lengths.(i) <- max depth 1
        | `Node (l, r) ->
            assign (depth + 1) l;
            assign (depth + 1) r
      in
      assign 0 root;
      lengths

(* zlib-style length limiting: clamp overlong codes, then repair Kraft
   equality by demoting codes from shorter lengths, finally reassign lengths
   to symbols by descending frequency. *)
let limit_lengths ~limit freqs lengths =
  let n = Array.length lengths in
  let nonzero_syms = Array.fold_left (fun a f -> if f > 0 then a + 1 else a) 0 freqs in
  if limit < 1 || nonzero_syms > 1 lsl limit then
    invalid_arg "Huffman.lengths_of_freqs: alphabet too large for limit";
  let bl_count = Array.make (limit + 1) 0 in
  let nonzero = ref 0 in
  let overflow = ref 0 in
  Array.iter
    (fun l ->
      if l > 0 then begin
        incr nonzero;
        if l > limit then begin
          incr overflow;
          bl_count.(limit) <- bl_count.(limit) + 1
        end
        else bl_count.(l) <- bl_count.(l) + 1
      end)
    lengths;
  if !overflow > 0 then begin
    (* Clamping overlong codes to [limit] over-fills the code space.  In
       units of 2^-limit, each "demote one code from the deepest non-limit
       level l to l+1, pairing it with a clamped code" move frees exactly
       one unit; repeat until Kraft equality is restored. *)
    let units () =
      let acc = ref 0 in
      for l = 1 to limit do
        acc := !acc + (bl_count.(l) lsl (limit - l))
      done;
      !acc
    in
    let excess = ref (units () - (1 lsl limit)) in
    while !excess > 0 do
      let bits = ref (limit - 1) in
      while bl_count.(!bits) = 0 do decr bits done;
      bl_count.(!bits) <- bl_count.(!bits) - 1;
      bl_count.(!bits + 1) <- bl_count.(!bits + 1) + 2;
      bl_count.(limit) <- bl_count.(limit) - 1;
      decr excess
    done;
    (* Reassign: most frequent symbols get the shortest lengths. *)
    let syms =
      Array.to_list (Array.mapi (fun i f -> (f, i)) freqs)
      |> List.filter (fun (f, _) -> f > 0)
      |> List.sort (fun (a, i) (b, j) -> compare (b, i) (a, j))
    in
    let out = Array.make n 0 in
    let len = ref 1 in
    let remaining = ref bl_count.(1) in
    List.iter
      (fun (_, i) ->
        while !remaining = 0 do
          incr len;
          remaining := bl_count.(!len)
        done;
        out.(i) <- !len;
        decr remaining)
      syms;
    out
  end
  else lengths

let lengths_of_freqs ?(limit = max_code_length) freqs =
  let lengths = unbounded_lengths freqs in
  limit_lengths ~limit freqs lengths

(* Canonical code assignment: codes ordered by (length, symbol). Codes are
   stored bit-reversed so that they can be emitted LSB-first. *)
let canonical_codes lengths =
  let n = Array.length lengths in
  let max_len = Array.fold_left max 0 lengths in
  let bl_count = Array.make (max_len + 1) 0 in
  Array.iter (fun l -> if l > 0 then bl_count.(l) <- bl_count.(l) + 1) lengths;
  let next_code = Array.make (max_len + 1) 0 in
  let code = ref 0 in
  for bits = 1 to max_len do
    code := (!code + bl_count.(bits - 1)) lsl 1;
    next_code.(bits) <- !code
  done;
  let reverse_bits v len =
    let r = ref 0 in
    for i = 0 to len - 1 do
      if (v lsr i) land 1 = 1 then r := !r lor (1 lsl (len - 1 - i))
    done;
    !r
  in
  let codes = Array.make n 0 in
  for i = 0 to n - 1 do
    let l = lengths.(i) in
    if l > 0 then begin
      codes.(i) <- reverse_bits next_code.(l) l;
      next_code.(l) <- next_code.(l) + 1
    end
  done;
  codes

type encoder = { codes : int array; lengths : int array }

let encoder_of_lengths lengths = { codes = canonical_codes lengths; lengths }

let encode enc w sym =
  let l = enc.lengths.(sym) in
  if l = 0 then invalid_arg "Huffman.encode: symbol has no code";
  Bitio.Writer.put_bits w enc.codes.(sym) ~width:l

let code_length enc sym = enc.lengths.(sym)

type decoder = {
  counts : int array;       (* number of codes per length *)
  base_codes : int array;   (* first canonical code of each length *)
  base_index : int array;   (* index into [symbols] of that first code *)
  symbols : int array;      (* symbols ordered by (length, symbol) *)
  dec_max_len : int;
}

let decoder_of_lengths lengths =
  let max_len = Array.fold_left max 0 lengths in
  let counts = Array.make (max_len + 1) 0 in
  Array.iter (fun l -> if l > 0 then counts.(l) <- counts.(l) + 1) lengths;
  let total = Array.fold_left ( + ) 0 counts in
  let symbols = Array.make (max total 1) 0 in
  let base_codes = Array.make (max_len + 1) 0
  and base_index = Array.make (max_len + 1) 0 in
  let code = ref 0 and idx = ref 0 in
  for l = 1 to max_len do
    code := (!code + (if l >= 2 then counts.(l - 1) else 0)) lsl 1;
    base_codes.(l) <- !code;
    base_index.(l) <- !idx;
    Array.iteri
      (fun sym sl ->
        if sl = l then begin
          symbols.(!idx) <- sym;
          incr idx
        end)
      lengths
  done;
  { counts; base_codes; base_index; symbols; dec_max_len = max_len }

let decode dec r =
  if dec.dec_max_len = 0 then invalid_arg "Huffman.decode: empty code";
  let rec loop len code =
    if len > dec.dec_max_len then invalid_arg "Huffman.decode: invalid code";
    let code = (code lsl 1) lor Bitio.Reader.get_bit r in
    let count = dec.counts.(len) in
    if count > 0 && code - dec.base_codes.(len) < count then
      dec.symbols.(dec.base_index.(len) + code - dec.base_codes.(len))
    else loop (len + 1) code
  in
  loop 1 0

let cost_bits lengths freqs =
  let acc = ref 0 in
  Array.iteri (fun i f -> if f > 0 then acc := !acc + (f * lengths.(i))) freqs;
  !acc
