module Poly = Fsync_hash.Poly_hash

type params = {
  window : int;
  mask_bits : int;
  min_size : int;
  max_size : int;
}

let default_params = { window = 48; mask_bits = 11; min_size = 256; max_size = 16384 }

type chunk = { off : int; len : int }

let chunks ?(params = default_params) data =
  if params.window <= 0 || params.mask_bits <= 0 || params.min_size <= 0
     || params.max_size < params.min_size
  then invalid_arg "Chunker.chunks: bad params";
  let n = String.length data in
  if n = 0 then []
  else if n <= params.window then [ { off = 0; len = n } ]
  else begin
    let mask = (1 lsl params.mask_bits) - 1 in
    let magic = mask in
    (* A boundary after position p when the window ending at p matches. *)
    let acc = ref [] in
    let start = ref 0 in
    let roller = Poly.Roller.create data ~window:params.window ~pos:0 in
    let cut p =
      acc := { off = !start; len = p - !start } :: !acc;
      start := p
    in
    let rec scan () =
      let wpos = Poly.Roller.pos roller in
      let wend = wpos + params.window in
      let size = wend - !start in
      if size >= params.min_size
         && (Poly.truncate (Poly.Roller.value roller) ~bits:params.mask_bits = magic
            || size >= params.max_size)
      then cut wend;
      if Poly.Roller.can_roll roller then begin
        Poly.Roller.roll roller;
        scan ()
      end
    in
    scan ();
    if !start < n then acc := { off = !start; len = n - !start } :: !acc;
    List.rev !acc
  end

let chunk_content data c = String.sub data c.off c.len

let boundaries ?params data =
  match chunks ?params data with
  | [] -> []
  | cs ->
      List.filteri (fun i _ -> i < List.length cs - 1) cs
      |> List.map (fun c -> c.off + c.len)
