(** Content-defined chunking with a Karp-Rabin rolling hash.

    The related-work family of §4 (LBFS, Spring-Wetherall, value-based
    web caching): a data stream is cut wherever the rolling hash of the
    trailing window satisfies [hash mod 2^mask_bits = magic], so both
    sides of a link partition identical content identically even after
    insertions and deletions shift byte positions.  Chunk sizes are
    bounded by [min_size]/[max_size]. *)

type params = {
  window : int;      (** rolling window width, default 48 *)
  mask_bits : int;   (** expected chunk size = 2^mask_bits, default 11 (2 KB) *)
  min_size : int;
  max_size : int;
}

val default_params : params

type chunk = { off : int; len : int }

val chunks : ?params:params -> string -> chunk list
(** Consecutive chunks covering the whole string (empty list for ""). *)

val chunk_content : string -> chunk -> string

val boundaries : ?params:params -> string -> int list
(** Cut positions (exclusive ends of chunks except the final one). *)
