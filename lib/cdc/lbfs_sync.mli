(** LBFS-style synchronization over content-defined chunks.

    The natural competitor from §4's related work: the server chunks the
    current file, sends one truncated strong hash per chunk, the client
    answers with a bitmap of the chunks it can produce from anywhere in
    its old file (which it chunked the same way), and the server ships
    the missing chunks compressed.  One round trip, no recursion — a
    useful midpoint between rsync and the paper's protocol in the
    benchmark tables. *)

type config = {
  chunking : Chunker.params;
  hash_bytes : int;  (** per-chunk hash width on the wire, default 6 *)
  level : Fsync_compress.Deflate.level;
}

val default_config : config

type cost = { server_to_client : int; client_to_server : int }

type result = {
  reconstructed : string;
  cost : cost;
  chunks_total : int;
  chunks_matched : int;
}

val sync : ?config:config -> old_file:string -> string -> result
(** [sync ~old_file new_file]; the reconstruction equals the new file
    unless a truncated-hash collision misleads a chunk (the caller is
    expected to wrap with a whole-file check, as the collection driver
    does for every method). *)

val total : cost -> int
