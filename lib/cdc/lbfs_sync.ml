module Md5 = Fsync_hash.Md5
module Deflate = Fsync_compress.Deflate

type config = {
  chunking : Chunker.params;
  hash_bytes : int;
  level : Fsync_compress.Deflate.level;
}

let default_config =
  { chunking = Chunker.default_params; hash_bytes = 6; level = Normal }

type cost = { server_to_client : int; client_to_server : int }

type result = {
  reconstructed : string;
  cost : cost;
  chunks_total : int;
  chunks_matched : int;
}

let total c = c.server_to_client + c.client_to_server

let chunk_key cfg data (c : Chunker.chunk) =
  String.sub (Md5.digest_sub data ~pos:c.off ~len:c.len) 0 cfg.hash_bytes

let sync ?(config = default_config) ~old_file new_file =
  let cfg = config in
  let new_chunks = Chunker.chunks ~params:cfg.chunking new_file in
  let old_chunks = Chunker.chunks ~params:cfg.chunking old_file in
  (* Client-side store: chunk hash -> content (from the old file). *)
  let store = Hashtbl.create 256 in
  List.iter
    (fun c -> Hashtbl.replace store (chunk_key cfg old_file c) c)
    old_chunks;
  (* Server -> client: per-chunk (hash, length). *)
  let s2c_index =
    List.fold_left
      (fun acc (c : Chunker.chunk) ->
        acc + cfg.hash_bytes + Fsync_util.Varint.size c.len)
      0 new_chunks
  in
  (* Client -> server: one bit per chunk. *)
  let c2s = (List.length new_chunks + 7) / 8 in
  let missing = Buffer.create 1024 in
  let matched = ref 0 in
  let out = Buffer.create (String.length new_file) in
  let missing_chunks =
    List.filter
      (fun (c : Chunker.chunk) ->
        match Hashtbl.find_opt store (chunk_key cfg new_file c) with
        | Some old_c when old_c.len = c.len ->
            incr matched;
            Buffer.add_string out (Chunker.chunk_content old_file old_c);
            false
        | _ ->
            Buffer.add_string out (Chunker.chunk_content new_file c);
            true)
      new_chunks
  in
  List.iter
    (fun c -> Buffer.add_string missing (Chunker.chunk_content new_file c))
    missing_chunks;
  let payload = Deflate.compress ~level:cfg.level (Buffer.contents missing) in
  {
    reconstructed = Buffer.contents out;
    cost = { server_to_client = s2c_index + String.length payload; client_to_server = c2s };
    chunks_total = List.length new_chunks;
    chunks_matched = !matched;
  }
