module Prng = Fsync_util.Prng

exception Crash_point of { op : string; k : int }

type spec = {
  p_enospc : float;
  p_eio : float;
  p_short : float;
  crash_at : int option;
}

let none = { p_enospc = 0.0; p_eio = 0.0; p_short = 0.0; crash_at = None }

type stats = {
  ops : int;
  enospc : int;
  eio : int;
  short_writes : int;
  crashed : bool;
}

type state = {
  spec : spec;
  prng : Prng.t;
  mutable ops : int;
  mutable n_enospc : int;
  mutable n_eio : int;
  mutable n_short : int;
  mutable crashed : bool;
  mutable crash_k : int;
}

let () =
  Printexc.register_printer (function
    | Crash_point { op; k } ->
        Some (Printf.sprintf "Fault_io.Crash_point(%s, syscall %d)" op k)
    | _ -> None)

let unix_err e op = Unix.Unix_error (e, op, "<fault-injected>")

(* One bookkeeping step per mutating syscall.  [`Crash] is returned (not
   raised) so the write path can tear the buffer before dying. *)
let check t op =
  if t.crashed then raise (Crash_point { op; k = t.crash_k });
  t.ops <- t.ops + 1;
  match t.spec.crash_at with
  | Some k when t.ops >= k ->
      t.crashed <- true;
      t.crash_k <- t.ops;
      `Crash
  | _ ->
      if Prng.bernoulli t.prng t.spec.p_enospc then begin
        t.n_enospc <- t.n_enospc + 1;
        raise (unix_err Unix.ENOSPC op)
      end
      else if Prng.bernoulli t.prng t.spec.p_eio then begin
        t.n_eio <- t.n_eio + 1;
        raise (unix_err Unix.EIO op)
      end
      else `Ok

let crash t op =
  raise (Crash_point { op; k = t.crash_k })

let mutating t op f =
  match check t op with `Crash -> crash t op | `Ok -> f ()

(* Reads carry no schedule of their own, but a crashed handle is a dead
   process: everything raises. *)
let reading t op f =
  if t.crashed then raise (Crash_point { op; k = t.crash_k });
  f ()

let wrap ?(base = Io.real) ~seed spec =
  let t =
    {
      spec;
      prng = Prng.create (Int64.of_int (seed * 2654435761 + 97));
      ops = 0;
      n_enospc = 0;
      n_eio = 0;
      n_short = 0;
      crashed = false;
      crash_k = 0;
    }
  in
  let wrap_handle (h : Io.handle) =
    {
      Io.h_write =
        (fun s ->
          match check t "write" with
          | `Crash ->
              (* The dying write tears: half the buffer lands first. *)
              h.h_write (String.sub s 0 (String.length s / 2));
              crash t "write"
          | `Ok ->
              let n = String.length s in
              if n > 1 && Prng.bernoulli t.prng t.spec.p_short then begin
                t.n_short <- t.n_short + 1;
                h.h_write (String.sub s 0 (1 + Prng.int t.prng (n - 1)));
                raise (unix_err Unix.EIO "write")
              end
              else h.h_write s);
      h_fsync = (fun () -> mutating t "fsync" h.h_fsync);
      h_close = (fun () -> mutating t "close" h.h_close);
    }
  in
  let io =
    {
      Io.open_out =
        (fun ~append path ->
          mutating t "open" (fun () -> wrap_handle (base.Io.open_out ~append path)));
      rename =
        (fun ~src ~dst -> mutating t "rename" (fun () -> base.rename ~src ~dst));
      unlink = (fun p -> mutating t "unlink" (fun () -> base.unlink p));
      mkdir = (fun p -> mutating t "mkdir" (fun () -> base.mkdir p));
      rmdir = (fun p -> mutating t "rmdir" (fun () -> base.rmdir p));
      read_file = (fun p -> reading t "read" (fun () -> base.read_file p));
      exists = (fun p -> reading t "exists" (fun () -> base.exists p));
      is_dir = (fun p -> reading t "is_dir" (fun () -> base.is_dir p));
      readdir = (fun p -> reading t "readdir" (fun () -> base.readdir p));
    }
  in
  let stats () =
    {
      ops = t.ops;
      enospc = t.n_enospc;
      eio = t.n_eio;
      short_writes = t.n_short;
      crashed = t.crashed;
    }
  in
  (io, stats)

(* ---- CLI spec syntax, mirroring Fsync_net.Fault ---- *)

let to_string s =
  let parts = ref [] in
  (match s.crash_at with
  | Some k -> parts := Printf.sprintf "crash=%d" k :: !parts
  | None -> ());
  if s.p_short > 0.0 then parts := Printf.sprintf "short=%g" s.p_short :: !parts;
  if s.p_eio > 0.0 then parts := Printf.sprintf "eio=%g" s.p_eio :: !parts;
  if s.p_enospc > 0.0 then
    parts := Printf.sprintf "enospc=%g" s.p_enospc :: !parts;
  match !parts with [] -> "none" | ps -> String.concat "," ps

let parse str =
  let str = String.trim str in
  if String.equal str "" || String.equal str "none" then Ok none
  else
    let fields = String.split_on_char ',' str in
    List.fold_left
      (fun acc field ->
        match acc with
        | Error _ -> acc
        | Ok spec -> (
            match String.index_opt field '=' with
            | None -> Error (Printf.sprintf "fault_io: missing '=' in %S" field)
            | Some i -> (
                let key = String.sub field 0 i in
                let value =
                  String.sub field (i + 1) (String.length field - i - 1)
                in
                let prob () =
                  match float_of_string_opt value with
                  | Some p when p >= 0.0 && p <= 1.0 -> Ok p
                  | _ ->
                      Error
                        (Printf.sprintf "fault_io: %s wants a probability, got %S"
                           key value)
                in
                match key with
                | "enospc" ->
                    Result.map (fun p -> { spec with p_enospc = p }) (prob ())
                | "eio" -> Result.map (fun p -> { spec with p_eio = p }) (prob ())
                | "short" ->
                    Result.map (fun p -> { spec with p_short = p }) (prob ())
                | "crash" -> (
                    match int_of_string_opt value with
                    | Some k when k >= 1 -> Ok { spec with crash_at = Some k }
                    | _ ->
                        Error
                          (Printf.sprintf
                             "fault_io: crash wants a syscall index >= 1, got %S"
                             value))
                | _ -> Error (Printf.sprintf "fault_io: unknown field %S" key))))
      (Ok none) fields
