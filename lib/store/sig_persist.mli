(** Persistence for signature-cache vectors (DESIGN.md §11).

    The daemon's [Fsync_server.Sigcache] holds, per (file fingerprint ×
    block size × hash bits), the vector of truncated level hashes it
    computed while serving.  Those vectors are pure functions of
    immutable content, so they survive a restart unchanged — this module
    files each one under the store's [sigs/] directory and reloads the
    lot at startup, turning a cold cache into a warm one without
    re-hashing the corpus.

    Entry files are named [<fp-hex>.<size>.<bits>] and written with the
    store's temp-file + rename discipline, so a crash mid-save leaves
    either the old vector or none.  [save] is best-effort (a full disk
    must not fail a sync); [load_all] skips entries it cannot parse and
    reports only how many it accepted. *)

val save :
  ?io:Io.t ->
  dir:string -> fp:Fsync_hash.Fingerprint.t -> size:int -> bits:int ->
  int array -> bool
(** Persist one level-hash vector.  Best-effort: I/O failures are
    swallowed (the cache simply stays cold for that entry) but reported
    as [false] so callers can count them ([sig_persist_errors]).
    A {!Fault_io.Crash_point} from [io] is not swallowed. *)

val load_all :
  dir:string ->
  (fp:Fsync_hash.Fingerprint.t -> size:int -> bits:int -> int array -> unit) ->
  int
(** Feed every readable persisted vector to the callback and return how
    many were loaded.  Unparseable or truncated entries are skipped. *)
