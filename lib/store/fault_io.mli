(** Seeded disk-fault injection over {!Io} (DESIGN.md §12).

    The storage-layer counterpart of [Fsync_net.Fault]: a deterministic
    schedule, derived from an explicit seed, that makes an {!Io.t}
    misbehave the way real disks do —

    - [ENOSPC] / [EIO] raised from mutating syscalls with configured
      probabilities;
    - {e short writes}: a seeded prefix of the buffer lands on disk and
      the write then fails with [EIO], leaving a torn file behind;
    - a hard {!Crash_point} at exactly the [K]-th mutating syscall.
      The first crash can tear a write in half; every operation after it
      raises {!Crash_point} again, so the handle behaves like a process
      that took SIGKILL — the caller must drop it and re-open with a
      clean [Io] to model the restart.

    Reads are never probabilistically faulted — the schedules model a
    dying writer, and clean reads let a harness inspect state
    mid-experiment — but a crashed handle is a dead process, so after
    the crash point reads raise {!Crash_point} like everything else.
    Mutating syscalls are counted in the order they happen, so a sweep
    over [crash_at = 1..N] visits every intermediate on-disk state. *)

exception Crash_point of { op : string; k : int }
(** Raised by the [k]-th mutating syscall (1-based), and by every
    operation thereafter.  [op] names the syscall that died. *)

type spec = {
  p_enospc : float;       (** probability of ENOSPC per mutating syscall *)
  p_eio : float;          (** probability of EIO per mutating syscall *)
  p_short : float;        (** probability of a torn (short) write *)
  crash_at : int option;  (** raise {!Crash_point} at this syscall count *)
}

val none : spec

type stats = {
  ops : int;              (** mutating syscalls attempted *)
  enospc : int;
  eio : int;
  short_writes : int;
  crashed : bool;
}

val wrap : ?base:Io.t -> seed:int -> spec -> Io.t * (unit -> stats)
(** An [Io.t] that forwards to [base] (default {!Io.real}) under the
    schedule, plus a live stats probe. *)

val parse : string -> (spec, string) result
(** Parse a CLI spec: comma-separated [enospc=P], [eio=P], [short=P],
    [crash=K].  [""] and ["none"] are {!none}. *)

val to_string : spec -> string
(** Inverse of {!parse} (canonical field order). *)
