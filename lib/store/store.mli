(** Persistent content-addressed chunk store (DESIGN.md §11).

    Chunks are immutable blobs keyed by their strong 16-byte
    {!Fsync_hash.Fingerprint}: a chunk shared by a thousand files (or a
    thousand clients) is stored — and uploaded — once.  Reference counts
    are not free-standing: every reference flows from a {e manifest},
    the ordered chunk list of one named file, so a chunk's refcount is
    always derivable as "how many manifest entries point at me".  The
    daemon keeps one manifest per served or pushed path; replacing a
    file's manifest releases the old chunks, and {!gc} reclaims whatever
    nothing references any more.

    On disk under [root]:
    {v
    root/
      chunks/ab/<32-hex>   one file per chunk, named by its fingerprint
      index.log            append-only event log (see below), compacted
      sigs/                persisted signature-cache vectors (Sig_persist)
      tmp/                 staging area for crash-safe writes
    v}

    The write path is crash-safe: a chunk is staged in [tmp/] and
    published with [rename], so no partial chunk is ever visible under
    [chunks/].  The index is append-only — [C] (chunk written), [M]
    (manifest set), [D] (manifest dropped) — and is compacted in place
    (also via temp-file + rename) once the log grows past 4× its live
    content; compaction snapshots refcount assertions ([R] records) that
    {!fsck} later re-verifies against the manifests.  A torn final line
    (crash mid-append) is ignored on replay; any other malformed line is
    a typed {!Fsync_core.Error}.

    All failures are typed [Fsync_core.Error] values — never a bare
    exception, never console output. *)

type t

val open_store : ?scope:Fsync_obs.Scope.t -> ?io:Io.t -> string -> t
(** Open (creating layout directories if needed) the store rooted at the
    given directory and replay its index.  Typed [Malformed] on an
    unreadable or corrupt index.  [io] (default {!Io.real}) carries
    every syscall the handle will make — pass a {!Fault_io} wrap to
    torture the store (DESIGN.md §12). *)

val fs : t -> Io.t
(** The injectable filesystem this handle was opened with. *)

val close : t -> unit
(** Flush and close the index appender.  Idempotent. *)

val root : t -> string

val sig_dir : t -> string
(** The [sigs/] subdirectory where signature-cache vectors persist. *)

(** {2 Chunks} *)

val mem : t -> Fsync_hash.Fingerprint.t -> bool
(** Residency probe; counted as [store_hits]/[store_misses] on the
    scope. *)

val put : t -> string -> Fsync_hash.Fingerprint.t
(** Ensure the chunk is resident and return its fingerprint.  Reference
    counts are untouched — references come from {!set_manifest} only.
    A resident chunk costs no I/O and is accounted as deduplicated
    ([store_bytes_deduped] on the scope). *)

val get : t -> Fsync_hash.Fingerprint.t -> string option
(** Raw chunk bytes, [None] when absent.  Contents are returned as
    stored; callers that need end-to-end integrity re-hash (the daemon
    does, {!fsck} audits the whole store). *)

val refs : t -> Fsync_hash.Fingerprint.t -> int
(** Current reference count (0 for unknown chunks). *)

(** {2 Manifests: named files as chunk lists} *)

val set_manifest : t -> path:string -> Fsync_hash.Fingerprint.t list -> unit
(** Declare that [path] is now composed of exactly these chunks, in
    order.  Increments the new chunks' refcounts and releases the
    previous manifest of [path] (if any).  Typed [Malformed] if any
    chunk is not resident. *)

val remove_manifest : t -> path:string -> unit
(** Drop [path]'s manifest, releasing its chunks.  No-op when absent. *)

val manifest : t -> path:string -> (Fsync_hash.Fingerprint.t * int) list option
(** The (chunk, length) list of [path], manifest order. *)

val manifest_paths : t -> string list
(** Sorted. *)

(** {2 Maintenance} *)

val gc : t -> int * int
(** Delete every resident chunk whose refcount is [<= 0]; returns
    [(chunks_removed, bytes_reclaimed)] and adds [gc_reclaimed] to the
    scope.  Compacts the index afterwards so the removals persist. *)

val compact : t -> unit
(** Rewrite the index as a minimal snapshot (crash-safe). *)

(** {2 Statistics} *)

type stats = {
  chunks : int;          (** resident chunks *)
  bytes : int;           (** their total payload bytes *)
  manifests : int;       (** named files tracked *)
  puts : int;            (** chunks written by this handle *)
  dedup_puts : int;      (** puts that found the chunk already resident *)
  bytes_deduped : int;   (** payload bytes those resident hits saved *)
  index_appends : int;   (** log records appended by this handle *)
  compactions : int;
}

val stats : t -> stats

(** {2 Fsck} *)

type fsck_finding =
  | Corrupt_chunk of { hex : string }
      (** resident bytes do not re-hash to the chunk's key *)
  | Missing_chunk of { hex : string; refs : int }
      (** the index references a chunk with no file behind it *)
  | Orphan_chunk of { hex : string }
      (** a chunk file the index does not know (torn put); warning *)
  | Refcount_skew of { hex : string; index_refs : int; manifest_refs : int }
      (** the replayed refcount disagrees with the manifests *)

type fsck_report = {
  chunks_checked : int;
  manifests_checked : int;
  findings : fsck_finding list;
  garbage_chunks : int;  (** refcount 0, resident; gc candidates, not errors *)
}

val fsck : t -> fsck_report
(** Verify every resident chunk re-hashes to its key, every referenced
    chunk is resident, and every refcount matches the manifests.  Adds
    [fsck_errors] (error findings, orphans excluded) to the scope. *)

val fsck_errors : fsck_report -> fsck_finding list
(** The findings that make the store unsound (everything but orphans). *)

val pp_fsck_finding : Format.formatter -> fsck_finding -> unit

val pp_fsck_report : Format.formatter -> fsck_report -> unit
