module Fp = Fsync_hash.Fingerprint
module Error = Fsync_core.Error
module Scope = Fsync_obs.Scope

(* Every filesystem failure surfaces as a typed error so a store problem
   tears down one session (or one CLI run), never the daemon loop. *)
let io what f =
  match f () with
  | x -> x
  | exception Sys_error m -> Error.malformed "Store: %s: %s" what m
  | exception Unix.Unix_error (e, fn, arg) ->
      Error.malformed "Store: %s: %s %s: %s" what fn arg
        (Unix.error_message e)

type chunk_info = { len : int; mutable crefs : int }

type t = {
  root : string;
  fs : Io.t; (* every syscall goes through here (DESIGN.md §12) *)
  chunks : (string, chunk_info) Hashtbl.t; (* hex -> info *)
  manifests : (string, string list) Hashtbl.t; (* path -> hex list *)
  scope : Scope.t;
  mutable oc : Io.handle option; (* index appender *)
  mutable appends : int; (* log records since the last compaction *)
  mutable tmp_seq : int;
  mutable closed : bool;
  (* handle-lifetime counters *)
  mutable puts : int;
  mutable dedup_puts : int;
  mutable bytes_deduped : int;
  mutable total_appends : int;
  mutable compactions : int;
}

let root t = t.root
let fs t = t.fs
let index_path t = Filename.concat t.root "index.log"
let chunks_dir t = Filename.concat t.root "chunks"
let sig_dir t = Filename.concat t.root "sigs"
let tmp_dir t = Filename.concat t.root "tmp"
let header = "fsync-store/1"

let chunk_rel hex = Filename.concat (String.sub hex 0 2) hex
let chunk_path t hex = Filename.concat (chunks_dir t) (chunk_rel hex)

let read_file t path = io ("read " ^ path) (fun () -> t.fs.Io.read_file path)

(* Crash-safe publication: stage under tmp/, fsync, rename into place.
   A crash before the rename leaves only staging garbage; a crash after
   it leaves at worst an index-less chunk that fsck reports as an
   orphan. *)
let write_file_atomic t ~dest content =
  let staging =
    t.tmp_seq <- t.tmp_seq + 1;
    Filename.concat (tmp_dir t)
      (Printf.sprintf "%d.%d.tmp" (Unix.getpid ()) t.tmp_seq)
  in
  io ("write " ^ dest) (fun () ->
      Io.write_file_atomic t.fs ~staging ~dest content)

(* ---- path escaping for index lines ----

   Paths land in a whitespace-separated text log; every byte outside the
   printable ASCII range (plus '%' itself) is percent-encoded so the
   line structure survives any path. *)

let hex_digit n = "0123456789abcdef".[n land 0xf]

let esc_path p =
  let b = Buffer.create (String.length p) in
  String.iter
    (fun c ->
      let code = Char.code c in
      if code <= 0x20 || code >= 0x7f || Char.equal c '%' then begin
        Buffer.add_char b '%';
        Buffer.add_char b (hex_digit (code lsr 4));
        Buffer.add_char b (hex_digit code)
      end
      else Buffer.add_char b c)
    p;
  Buffer.contents b

let unhex_digit c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> Error.malformed "Store: bad escape digit %C in index" c

let unesc_path s =
  let b = Buffer.create (String.length s) in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    (if Char.equal s.[!i] '%' then begin
       if !i + 2 >= n then Error.malformed "Store: truncated escape in index";
       Buffer.add_char b
         (Char.chr ((unhex_digit s.[!i + 1] lsl 4) lor unhex_digit s.[!i + 2]));
       i := !i + 3
     end
     else begin
       Buffer.add_char b s.[!i];
       incr i
     end)
  done;
  Buffer.contents b

let is_hex32 s =
  Int.equal (String.length s) 32
  && String.for_all
       (function '0' .. '9' | 'a' .. 'f' -> true | _ -> false)
       s

let check_hex what s =
  if not (is_hex32 s) then
    Error.malformed "Store: %s is not a chunk key: %S" what s

let int_field what s =
  match int_of_string_opt s with
  | Some v -> v
  | None -> Error.malformed "Store: non-numeric %s %S in index" what s

(* ---- refcount bookkeeping (always via manifests) ---- *)

let incref t hex =
  match Hashtbl.find_opt t.chunks hex with
  | Some info -> info.crefs <- info.crefs + 1
  | None ->
      (* Referenced before written: remember it so fsck can report the
         missing chunk instead of silently losing the reference. *)
      Hashtbl.replace t.chunks hex { len = 0; crefs = 1 }

let decref t hex =
  match Hashtbl.find_opt t.chunks hex with
  | Some info -> info.crefs <- info.crefs - 1
  | None -> Hashtbl.replace t.chunks hex { len = 0; crefs = -1 }

let apply_manifest t path hexes =
  (match Hashtbl.find_opt t.manifests path with
  | Some old -> List.iter (decref t) old
  | None -> ());
  List.iter (incref t) hexes;
  Hashtbl.replace t.manifests path hexes

let apply_manifest_drop t path =
  match Hashtbl.find_opt t.manifests path with
  | Some old ->
      List.iter (decref t) old;
      Hashtbl.remove t.manifests path
  | None -> ()

(* ---- index replay ---- *)

let replay_line t line =
  match String.split_on_char ' ' line with
  | [ "C"; hex; len ] ->
      check_hex "C record" hex;
      let len = int_field "chunk length" len in
      let crefs =
        match Hashtbl.find_opt t.chunks hex with
        | Some i -> i.crefs
        | None -> 0
      in
      Hashtbl.replace t.chunks hex { len; crefs }
  | "M" :: path :: count :: hexes ->
      let path = unesc_path path in
      let count = int_field "manifest count" count in
      if not (Int.equal count (List.length hexes)) then
        Error.malformed "Store: manifest for %s declares %d chunks, has %d"
          path count (List.length hexes);
      List.iter (check_hex "manifest entry") hexes;
      apply_manifest t path hexes
  | [ "D"; path ] -> apply_manifest_drop t (unesc_path path)
  | [ "R"; hex; refs ] -> (
      check_hex "R record" hex;
      let refs = int_field "refcount" refs in
      match Hashtbl.find_opt t.chunks hex with
      | Some info -> info.crefs <- refs
      | None -> Hashtbl.replace t.chunks hex { len = 0; crefs = refs })
  | _ -> Error.malformed "Store: unparseable index line %S" line

let replay t =
  let path = index_path t in
  if t.fs.Io.exists path then begin
    let raw = read_file t path in
    (* A file ending in '\n' splits into lines @ [""]; anything else
       ends in a torn append, which replay ignores (the record never
       committed). *)
    let lines =
      match List.rev (String.split_on_char '\n' raw) with
      | _last_fragment :: rev -> List.rev rev
      | [] -> []
    in
    match lines with
    | [] -> ()
    | first :: rest ->
        if not (String.equal first header) then
          Error.malformed "Store: %s does not start with %S" path header;
        List.iter (replay_line t) rest
  end

(* ---- appending and compaction ---- *)

let appender t =
  match t.oc with
  | Some h -> h
  | None ->
      let h =
        io "open index" (fun () ->
            let exists = t.fs.Io.exists (index_path t) in
            let h = t.fs.Io.open_out ~append:true (index_path t) in
            if not exists then h.Io.h_write (header ^ "\n");
            h)
      in
      t.oc <- Some h;
      h

let snapshot_lines t =
  let b = Buffer.create 4096 in
  Buffer.add_string b header;
  Buffer.add_char b '\n';
  let chunk_list =
    List.sort String.compare
      (Hashtbl.fold (fun hex _ acc -> hex :: acc) t.chunks [])
  in
  List.iter
    (fun hex ->
      let info = Hashtbl.find t.chunks hex in
      Buffer.add_string b (Printf.sprintf "C %s %d\n" hex info.len))
    chunk_list;
  let paths =
    List.sort String.compare
      (Hashtbl.fold (fun p _ acc -> p :: acc) t.manifests [])
  in
  List.iter
    (fun path ->
      let hexes = Hashtbl.find t.manifests path in
      Buffer.add_string b
        (Printf.sprintf "M %s %d%s\n" (esc_path path) (List.length hexes)
           (String.concat ""
              (List.map (fun h -> " " ^ h) hexes))))
    paths;
  (* Refcount assertions: redundant with the manifests by construction,
     recorded so fsck can detect a skewed or hand-edited index. *)
  List.iter
    (fun hex ->
      let info = Hashtbl.find t.chunks hex in
      Buffer.add_string b (Printf.sprintf "R %s %d\n" hex info.crefs))
    chunk_list;
  Buffer.contents b

let compact t =
  (match t.oc with
  | Some h ->
      io "close index" (fun () -> h.Io.h_close ());
      t.oc <- None
  | None -> ());
  write_file_atomic t ~dest:(index_path t) (snapshot_lines t);
  t.appends <- 0;
  t.compactions <- t.compactions + 1

let live_records t = Hashtbl.length t.chunks + Hashtbl.length t.manifests

(* One unbuffered write per record: a crash can only tear the final
   line, which replay tolerates.  No fsync — losing the tail of the log
   costs at worst orphan chunks, which fsck reports as warnings. *)
let append t line =
  let h = appender t in
  io "append index" (fun () -> h.Io.h_write (line ^ "\n"));
  t.appends <- t.appends + 1;
  t.total_appends <- t.total_appends + 1;
  if t.appends > 64 && t.appends > 4 * live_records t then compact t

(* ---- opening ---- *)

let open_store ?(scope = Scope.disabled) ?io:(fs = Io.real) root =
  let t =
    {
      root;
      fs;
      chunks = Hashtbl.create 256;
      manifests = Hashtbl.create 64;
      scope;
      oc = None;
      appends = 0;
      tmp_seq = 0;
      closed = false;
      puts = 0;
      dedup_puts = 0;
      bytes_deduped = 0;
      total_appends = 0;
      compactions = 0;
    }
  in
  io ("create layout under " ^ root) (fun () ->
      Io.mkdir_p t.fs root;
      Io.mkdir_p t.fs (chunks_dir t);
      Io.mkdir_p t.fs (sig_dir t);
      Io.mkdir_p t.fs (tmp_dir t));
  replay t;
  t

let close t =
  if not t.closed then begin
    t.closed <- true;
    match t.oc with
    | Some h ->
        (match h.Io.h_close () with
        | () -> ()
        | exception Sys_error _ | exception Unix.Unix_error _ -> ());
        t.oc <- None
    | None -> ()
  end

(* ---- chunk operations ---- *)

let resident t hex =
  match Hashtbl.find_opt t.chunks hex with
  | Some _ -> t.fs.Io.exists (chunk_path t hex)
  | None -> false

let mem t fp =
  let hit = resident t (Fp.to_hex fp) in
  Scope.incr t.scope (if hit then "store_hits" else "store_misses");
  hit

let put t content =
  let fp = Fp.of_string content in
  let hex = Fp.to_hex fp in
  if resident t hex then begin
    t.dedup_puts <- t.dedup_puts + 1;
    t.bytes_deduped <- t.bytes_deduped + String.length content;
    Scope.add t.scope "store_bytes_deduped" (String.length content);
    fp
  end
  else begin
    io "mkdir chunk fanout" (fun () ->
        Io.mkdir_p t.fs (Filename.dirname (chunk_path t hex)));
    write_file_atomic t ~dest:(chunk_path t hex) content;
    let crefs =
      match Hashtbl.find_opt t.chunks hex with
      | Some i -> i.crefs
      | None -> 0
    in
    Hashtbl.replace t.chunks hex { len = String.length content; crefs };
    append t (Printf.sprintf "C %s %d" hex (String.length content));
    t.puts <- t.puts + 1;
    fp
  end

let get t fp =
  let hex = Fp.to_hex fp in
  if resident t hex then Some (read_file t (chunk_path t hex)) else None

let refs t fp =
  match Hashtbl.find_opt t.chunks (Fp.to_hex fp) with
  | Some i -> i.crefs
  | None -> 0

(* ---- manifests ---- *)

let set_manifest t ~path fps =
  let hexes = List.map Fp.to_hex fps in
  List.iter
    (fun hex ->
      if not (resident t hex) then
        Error.malformed "Store: manifest for %s references absent chunk %s"
          path hex)
    hexes;
  (* Idempotence guard: re-declaring the identical manifest (the daemon
     re-ingesting its collection on restart) must not append a record
     per file per restart. *)
  let same =
    match Hashtbl.find_opt t.manifests path with
    | Some old -> List.equal String.equal old hexes
    | None -> false
  in
  if not same then begin
    apply_manifest t path hexes;
    append t
      (Printf.sprintf "M %s %d%s" (esc_path path) (List.length hexes)
         (String.concat "" (List.map (fun h -> " " ^ h) hexes)))
  end

let remove_manifest t ~path =
  if Hashtbl.mem t.manifests path then begin
    apply_manifest_drop t path;
    append t (Printf.sprintf "D %s" (esc_path path))
  end

let manifest t ~path =
  match Hashtbl.find_opt t.manifests path with
  | None -> None
  | Some hexes ->
      Some
        (List.map
           (fun hex ->
             let len =
               match Hashtbl.find_opt t.chunks hex with
               | Some i -> i.len
               | None -> 0
             in
             (Fp.of_raw (Fsync_util.Bytes_util.of_hex hex), len))
           hexes)

let manifest_paths t =
  List.sort String.compare
    (Hashtbl.fold (fun p _ acc -> p :: acc) t.manifests [])

(* ---- gc ---- *)

let gc t =
  let victims =
    Hashtbl.fold
      (fun hex info acc -> if info.crefs <= 0 then (hex, info) :: acc else acc)
      t.chunks []
  in
  let removed, bytes =
    List.fold_left
      (fun (n, b) (hex, (info : chunk_info)) ->
        io ("gc unlink " ^ hex) (fun () ->
            match t.fs.Io.unlink (chunk_path t hex) with
            | () -> ()
            | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ());
        Hashtbl.remove t.chunks hex;
        (n + 1, b + info.len))
      (0, 0) victims
  in
  if removed > 0 then begin
    Scope.add t.scope "gc_reclaimed" bytes;
    compact t
  end;
  (removed, bytes)

(* ---- stats ---- *)

type stats = {
  chunks : int;
  bytes : int;
  manifests : int;
  puts : int;
  dedup_puts : int;
  bytes_deduped : int;
  index_appends : int;
  compactions : int;
}

let stats (t : t) =
  {
    chunks = Hashtbl.length t.chunks;
    bytes = Hashtbl.fold (fun _ i acc -> acc + i.len) t.chunks 0;
    manifests = Hashtbl.length t.manifests;
    puts = t.puts;
    dedup_puts = t.dedup_puts;
    bytes_deduped = t.bytes_deduped;
    index_appends = t.total_appends;
    compactions = t.compactions;
  }

(* ---- fsck ---- *)

type fsck_finding =
  | Corrupt_chunk of { hex : string }
  | Missing_chunk of { hex : string; refs : int }
  | Orphan_chunk of { hex : string }
  | Refcount_skew of { hex : string; index_refs : int; manifest_refs : int }

type fsck_report = {
  chunks_checked : int;
  manifests_checked : int;
  findings : fsck_finding list;
  garbage_chunks : int;
}

let is_error = function
  | Corrupt_chunk _ | Missing_chunk _ | Refcount_skew _ -> true
  | Orphan_chunk _ -> false

let fsck_errors r = List.filter is_error r.findings

let fsck t =
  let findings = ref [] in
  let garbage = ref 0 in
  let add f = findings := f :: !findings in
  let checked = ref 0 in
  (* 1. Every indexed chunk is resident and re-hashes to its key; a
     refcount-zero record with no file is a half-finished gc, counted as
     garbage rather than damage. *)
  Hashtbl.iter
    (fun hex (info : chunk_info) ->
      incr checked;
      let path = chunk_path t hex in
      if t.fs.Io.exists path then begin
        if info.crefs <= 0 then incr garbage;
        let content = read_file t path in
        if not (String.equal (Fp.to_hex (Fp.of_string content)) hex) then
          add (Corrupt_chunk { hex })
      end
      else if info.crefs > 0 then
        add (Missing_chunk { hex; refs = info.crefs })
      else incr garbage)
    t.chunks;
  (* 2. Every resident chunk file is indexed (torn put ⇒ orphan). *)
  let scan_fan fan =
    let dir = Filename.concat (chunks_dir t) fan in
    if t.fs.Io.is_dir dir then
      Array.iter
        (fun name ->
          if is_hex32 name && not (Hashtbl.mem t.chunks name) then
            add (Orphan_chunk { hex = name }))
        (match t.fs.Io.readdir dir with
        | a -> a
        | exception Sys_error _ | exception Unix.Unix_error _ -> [||])
  in
  (match t.fs.Io.readdir (chunks_dir t) with
  | fans -> Array.iter scan_fan fans
  | exception Sys_error _ | exception Unix.Unix_error _ -> ());
  (* 3. Refcounts must equal the number of manifest references: the
     counts were replayed from the log (including R assertions), the
     manifests are the ground truth. *)
  let derived = Hashtbl.create 64 in
  Hashtbl.iter
    (fun _ hexes ->
      List.iter
        (fun hex ->
          Hashtbl.replace derived hex
            (1 + Option.value ~default:0 (Hashtbl.find_opt derived hex)))
        hexes)
    t.manifests;
  Hashtbl.iter
    (fun hex (info : chunk_info) ->
      let want = Option.value ~default:0 (Hashtbl.find_opt derived hex) in
      if not (Int.equal want info.crefs) then
        add (Refcount_skew { hex; index_refs = info.crefs; manifest_refs = want }))
    t.chunks;
  let report =
    {
      chunks_checked = !checked;
      manifests_checked = Hashtbl.length t.manifests;
      findings = List.rev !findings;
      garbage_chunks = !garbage;
    }
  in
  Scope.add t.scope "fsck_errors" (List.length (fsck_errors report));
  report

let pp_fsck_finding ppf = function
  | Corrupt_chunk { hex } ->
      Format.fprintf ppf "corrupt chunk %s: bytes do not re-hash to the key"
        hex
  | Missing_chunk { hex; refs } ->
      Format.fprintf ppf "missing chunk %s: %d reference(s), no file" hex refs
  | Orphan_chunk { hex } ->
      Format.fprintf ppf "orphan chunk %s: resident but not indexed" hex
  | Refcount_skew { hex; index_refs; manifest_refs } ->
      Format.fprintf ppf
        "refcount skew on %s: index says %d, manifests reference it %d time(s)"
        hex index_refs manifest_refs

let pp_fsck_report ppf r =
  Format.fprintf ppf
    "fsck: %d chunk(s), %d manifest(s), %d garbage, %d finding(s)"
    r.chunks_checked r.manifests_checked r.garbage_chunks
    (List.length r.findings);
  List.iter (fun f -> Format.fprintf ppf "@.  %a" pp_fsck_finding f) r.findings
