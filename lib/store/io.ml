type handle = {
  h_write : string -> unit;
  h_fsync : unit -> unit;
  h_close : unit -> unit;
}

type t = {
  open_out : append:bool -> string -> handle;
  rename : src:string -> dst:string -> unit;
  unlink : string -> unit;
  mkdir : string -> unit;
  rmdir : string -> unit;
  read_file : string -> string;
  exists : string -> bool;
  is_dir : string -> bool;
  readdir : string -> string array;
}

let real_open_out ~append path =
  let flags =
    if append then Unix.[ O_WRONLY; O_CREAT; O_APPEND ]
    else Unix.[ O_WRONLY; O_CREAT; O_TRUNC ]
  in
  let fd = Unix.openfile path flags 0o644 in
  {
    h_write =
      (fun s ->
        let n = String.length s in
        let off = ref 0 in
        while !off < n do
          off := !off + Unix.write_substring fd s !off (n - !off)
        done);
    h_fsync = (fun () -> Unix.fsync fd);
    h_close = (fun () -> Unix.close fd);
  }

let real =
  {
    open_out = real_open_out;
    rename = (fun ~src ~dst -> Unix.rename src dst);
    unlink = Unix.unlink;
    mkdir =
      (fun dir ->
        match Unix.mkdir dir 0o755 with
        | () -> ()
        | exception Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    rmdir = Unix.rmdir;
    read_file =
      (fun path ->
        let ic = open_in_bin path in
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic)));
    exists = (fun path -> Sys.file_exists path);
    is_dir =
      (fun path ->
        match Sys.is_directory path with
        | b -> b
        | exception Sys_error _ -> false);
    readdir = Sys.readdir;
  }

let write_file io path content =
  let h = io.open_out ~append:false path in
  match
    h.h_write content;
    h.h_fsync ()
  with
  | () -> h.h_close ()
  | exception e ->
      (try h.h_close () with _ -> ());
      raise e

let write_file_atomic io ~staging ~dest content =
  write_file io staging content;
  io.rename ~src:staging ~dst:dest

let rec mkdir_p io dir =
  if
    (not (String.equal dir ""))
    && (not (String.equal dir "."))
    && (not (String.equal dir "/"))
    && not (io.exists dir)
  then begin
    mkdir_p io (Filename.dirname dir);
    io.mkdir dir
  end
