module Fp = Fsync_hash.Fingerprint

let header = "fsync-sigs/1"

let entry_name ~fp ~size ~bits =
  Printf.sprintf "%s.%d.%d" (Fp.to_hex fp) size bits

let is_hex32 s =
  Int.equal (String.length s) 32
  && String.for_all
       (function '0' .. '9' | 'a' .. 'f' -> true | _ -> false)
       s

let save ?(io = Io.real) ~dir ~fp ~size ~bits hashes =
  let b = Buffer.create 256 in
  Buffer.add_string b header;
  Buffer.add_char b '\n';
  Buffer.add_string b (string_of_int (Array.length hashes));
  Buffer.add_char b '\n';
  Array.iter
    (fun h ->
      Buffer.add_string b (Printf.sprintf "%x" h);
      Buffer.add_char b '\n')
    hashes;
  let dest = Filename.concat dir (entry_name ~fp ~size ~bits) in
  let staging = dest ^ ".tmp" in
  (* Best-effort: a failed save only costs a cold cache entry — but the
     caller is told, so the failure can be counted
     ([sig_persist_errors]) instead of vanishing. *)
  match Io.write_file_atomic io ~staging ~dest (Buffer.contents b) with
  | () -> true
  | exception Sys_error _ | exception Unix.Unix_error _ -> false

let parse_vector raw =
  match String.split_on_char '\n' raw with
  | hd :: count :: rest when String.equal hd header -> (
      match int_of_string_opt count with
      | Some n when n >= 0 && List.length rest >= n ->
          let values = Array.make n 0 in
          let ok = ref true in
          List.iteri
            (fun i line ->
              if i < n then
                match int_of_string_opt ("0x" ^ line) with
                | Some v -> values.(i) <- v
                | None -> ok := false)
            rest;
          if !ok then Some values else None
      | _ -> None)
  | _ -> None

let load_entry ~dir name k =
  match String.split_on_char '.' name with
  | [ hex; size; bits ] when is_hex32 hex -> (
      match (int_of_string_opt size, int_of_string_opt bits) with
      | Some size, Some bits -> (
          let read () =
            let ic = open_in_bin (Filename.concat dir name) in
            Fun.protect
              ~finally:(fun () -> close_in_noerr ic)
              (fun () -> really_input_string ic (in_channel_length ic))
          in
          match parse_vector (read ()) with
          | Some hashes ->
              k ~fp:(Fp.of_raw (Fsync_util.Bytes_util.of_hex hex)) ~size ~bits
                hashes;
              true
          | None -> false
          | exception Sys_error _
          | exception End_of_file
          | exception Invalid_argument _ ->
              false)
      | _ -> false)
  | _ -> false

let load_all ~dir k =
  match Sys.readdir dir with
  | exception Sys_error _ -> 0
  | names ->
      Array.fold_left
        (fun n name ->
          if Filename.check_suffix name ".tmp" then n
          else if load_entry ~dir name k then n + 1
          else n)
        0 names
