(** Injectable filesystem operations (DESIGN.md §12).

    Every mutating syscall the storage layer performs — open, write,
    fsync, rename, unlink, mkdir — goes through one of these records, so
    a test (or the torture harness, [bench/main.exe torture]) can swap
    in {!Fault_io} and drive the store, the signature persister, and the
    journaled apply path through seeded ENOSPC/EIO/short-write schedules
    and hard crash points without touching a real flaky disk.

    The operations raise [Unix.Unix_error]/[Sys_error] exactly like the
    real syscalls; callers are expected to wrap them in their own typed
    error discipline (the store maps them to [Fsync_core.Error]). *)

type handle = {
  h_write : string -> unit;  (** append the bytes to the open file *)
  h_fsync : unit -> unit;
  h_close : unit -> unit;
}
(** An open file being written.  Handles are plain records of closures
    so a fault-injecting implementation can wrap another. *)

type t = {
  open_out : append:bool -> string -> handle;
      (** [append:false] creates/truncates; [append:true] opens for
          append, creating if absent. *)
  rename : src:string -> dst:string -> unit;
  unlink : string -> unit;
  mkdir : string -> unit;  (** one level; existing directory is a no-op *)
  rmdir : string -> unit;
  read_file : string -> string;
  exists : string -> bool;
  is_dir : string -> bool;
  readdir : string -> string array;
}

val real : t
(** The actual filesystem, via [Unix]. *)

val write_file : t -> string -> string -> unit
(** Open/truncate, write everything, fsync, close. *)

val write_file_atomic : t -> staging:string -> dest:string -> string -> unit
(** [write_file] to [staging], then rename over [dest]: readers see the
    old bytes or the new bytes, never a prefix. *)

val mkdir_p : t -> string -> unit
